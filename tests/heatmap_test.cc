#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/superimposition.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

TEST(HeatmapGridTest, GeometryAccessors) {
  HeatmapGrid grid(4, 2, Rect{{0, 0}, {4, 2}}, 0.5);
  EXPECT_EQ(grid.width(), 4);
  EXPECT_EQ(grid.height(), 2);
  EXPECT_DOUBLE_EQ(grid.At(0, 0), 0.5);
  const Point c = grid.PixelCenter(1, 0);
  EXPECT_DOUBLE_EQ(c.x, 1.5);
  EXPECT_DOUBLE_EQ(c.y, 0.5);
  grid.At(3, 1) = 9.0;
  EXPECT_DOUBLE_EQ(grid.MaxValue(), 9.0);
  EXPECT_DOUBLE_EQ(grid.Sample({3.9, 1.9}), 9.0);
  EXPECT_DOUBLE_EQ(grid.Sample({100, 100}), 9.0);  // clamped
  EXPECT_DOUBLE_EQ(grid.Sample({-100, -100}), 0.5);
}

TEST(HeatmapBuilderTest, LInfExactVsBruteForce) {
  Rng rng(140);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 50; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.2), i});
  }
  SizeInfluence measure;
  const Rect domain{{-0.1, -0.1}, {1.1, 1.1}};
  const HeatmapGrid fast =
      BuildHeatmapLInf(circles, measure, domain, 120, 120);
  const HeatmapGrid slow =
      BuildHeatmapBruteForce(circles, Metric::kLInf, measure, domain, 120, 120);
  for (int i = 0; i < 120; ++i) {
    for (int j = 0; j < 120; ++j) {
      ASSERT_DOUBLE_EQ(fast.At(i, j), slow.At(i, j))
          << "pixel " << i << "," << j;
    }
  }
}

TEST(HeatmapBuilderTest, NonSquareGridAndDomain) {
  Rng rng(141);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 25; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 2), rng.Uniform(0, 1)},
                               rng.Uniform(0.05, 0.3), i});
  }
  SizeInfluence measure;
  const Rect domain{{0, 0}, {2, 1}};
  const HeatmapGrid fast = BuildHeatmapLInf(circles, measure, domain, 160, 60);
  const HeatmapGrid slow =
      BuildHeatmapBruteForce(circles, Metric::kLInf, measure, domain, 160, 60);
  for (int i = 0; i < 160; i += 2) {
    for (int j = 0; j < 60; j += 2) {
      ASSERT_DOUBLE_EQ(fast.At(i, j), slow.At(i, j));
    }
  }
}

TEST(HeatmapBuilderTest, BackgroundIsEmptySetInfluence) {
  // With a measure that maps the empty set to a nonzero value, uncovered
  // pixels must carry that value.
  class OffsetMeasure : public InfluenceMeasure {
   public:
    double Evaluate(std::span<const int32_t> clients) const override {
      return 10.0 + static_cast<double>(clients.size());
    }
  };
  const std::vector<NnCircle> circles{{{0.5, 0.5}, 0.1, 0}};
  OffsetMeasure measure;
  const Rect domain{{0, 0}, {1, 1}};
  const HeatmapGrid grid = BuildHeatmapLInf(circles, measure, domain, 50, 50);
  EXPECT_DOUBLE_EQ(grid.At(0, 0), 10.0);           // far corner
  EXPECT_DOUBLE_EQ(grid.Sample({0.5, 0.5}), 11.0); // inside the square
}

TEST(SuperimpositionTest, EqualsSizeHeatmapForSizeMeasure) {
  // Fig. 3(b): overlay counts equal the size-measure heat map.
  Rng rng(142);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 30; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.05, 0.25), i});
  }
  SizeInfluence measure;
  const Rect domain{{-0.2, -0.2}, {1.2, 1.2}};
  const HeatmapGrid heat = BuildHeatmapLInf(circles, measure, domain, 90, 90);
  const HeatmapGrid overlay =
      BuildSuperimposition(circles, Metric::kLInf, domain, 90, 90);
  for (int i = 0; i < 90; ++i) {
    for (int j = 0; j < 90; ++j) {
      ASSERT_DOUBLE_EQ(heat.At(i, j), overlay.At(i, j));
    }
  }
}

TEST(SuperimpositionTest, DisagreesForGenericMeasures) {
  // The paper's Fig. 3 argument, rebuilt with L-infinity squares so the
  // region layout is exact: regions {o1,o2,o4} and {o1,o3,o4} both have
  // superimposition depth 3 (the overlay's joint maximum), but under the
  // connectivity measure the first has heat 3 and the second only 1 —
  // the overlay cannot tell them apart.
  const std::vector<NnCircle> circles{
      {{2.0, 2.0}, 2.0, 0},   // o1: [0,4]x[0,4]
      {{5.0, 2.0}, 2.0, 1},   // o2: [3,7]x[0,4]
      {{0.0, 4.0}, 2.0, 2},   // o3: [-2,2]x[2,6]
      {{3.5, 5.0}, 2.0, 3}};  // o4: [1.5,5.5]x[3,7]
  ConnectivityInfluence connected(4, {{0, 1}, {0, 3}, {1, 3}});
  const Point in_124{3.5, 3.5};   // inside o1, o2, o4
  const Point in_134{1.75, 3.5};  // inside o1, o3, o4
  // Overlay depth is 3 at both points and nowhere higher.
  const Rect domain{{-2.5, -0.5}, {7.5, 7.5}};
  const HeatmapGrid overlay =
      BuildSuperimposition(circles, Metric::kLInf, domain, 100, 100);
  EXPECT_DOUBLE_EQ(overlay.Sample(in_124), 3.0);
  EXPECT_DOUBLE_EQ(overlay.Sample(in_134), 3.0);
  EXPECT_DOUBLE_EQ(overlay.MaxValue(), 3.0);
  // The true heat map separates them: 3 connected pairs vs 1.
  const HeatmapGrid heat = BuildHeatmapBruteForce(
      circles, Metric::kLInf, connected, domain, 100, 100);
  EXPECT_DOUBLE_EQ(heat.Sample(in_124), 3.0);
  EXPECT_DOUBLE_EQ(heat.Sample(in_134), 1.0);
  EXPECT_DOUBLE_EQ(heat.MaxValue(), 3.0);
}

TEST(ImageTest, WritesValidPgmAndPpm) {
  HeatmapGrid grid(8, 4, Rect{{0, 0}, {8, 4}});
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 4; ++j) grid.At(i, j) = i + j;
  }
  const std::string pgm = "/tmp/rnnhm_test.pgm";
  const std::string ppm = "/tmp/rnnhm_test.ppm";
  ASSERT_TRUE(WritePgm(grid, pgm));
  ASSERT_TRUE(WritePpm(grid, ppm));
  // Check headers and sizes.
  std::FILE* f = std::fopen(pgm.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fscanf(f, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P5");
  std::fseek(f, 0, SEEK_END);
  EXPECT_GE(std::ftell(f), 8 * 4);
  std::fclose(f);
  f = std::fopen(ppm.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fscanf(f, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P6");
  std::fseek(f, 0, SEEK_END);
  EXPECT_GE(std::ftell(f), 8 * 4 * 3);
  std::fclose(f);
  std::remove(pgm.c_str());
  std::remove(ppm.c_str());
}

TEST(ImageTest, FailsOnUnwritablePath) {
  HeatmapGrid grid(2, 2, Rect{{0, 0}, {1, 1}});
  EXPECT_FALSE(WritePgm(grid, "/nonexistent_dir/x.pgm"));
  EXPECT_FALSE(WritePpm(grid, "/nonexistent_dir/x.ppm"));
}

TEST(HeatmapBuilderTest, ParallelLInfBuilderIsBitIdenticalToSequential) {
  Rng rng(90);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 150; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.01, 0.15), i});
  }
  SizeInfluence measure;
  const Rect domain{{-0.1, -0.1}, {1.1, 1.1}};
  const HeatmapGrid want =
      BuildHeatmapLInf(circles, measure, domain, 80, 80);
  for (const int slabs : {1, 3, 8}) {
    const HeatmapGrid got =
        BuildHeatmapLInfParallel(circles, measure, domain, 80, 80, slabs);
    ASSERT_EQ(got.values().size(), want.values().size());
    for (size_t i = 0; i < want.values().size(); ++i) {
      ASSERT_EQ(got.values()[i], want.values()[i])
          << "slabs " << slabs << ", flat index " << i;
    }
  }
}

TEST(BoundingBoxTest, ComputesAndPads) {
  const std::vector<Point> pts{{0, 0}, {2, 1}, {-1, 3}};
  const Rect box = BoundingBox(pts);
  EXPECT_EQ(box, Rect({{-1, 0}, {2, 3}}));
  const Rect padded = BoundingBox(pts, 0.1);
  EXPECT_DOUBLE_EQ(padded.lo.x, -1.3);  // pad = 0.1 * max extent (3)
  EXPECT_DOUBLE_EQ(padded.hi.y, 3.3);
}

}  // namespace
}  // namespace rnnhm
