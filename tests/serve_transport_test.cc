// Serving transport tests: frame reassembly under arbitrary delivery
// splits, the WireServer byte-stream surface, and the nonblocking socket
// event loop (both pollers, both socket transports) — connection limits,
// idle timeouts, slow-reader backpressure, graceful shutdown.
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "query/wire.h"
#include "serve/byte_stream.h"
#include "serve/event_loop.h"
#include "serve/frame_buffer.h"
#include "serve/options.h"
#include "serve/transport.h"
#include "serve/wire_server.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

const Rect kDomain{{-0.1, -0.1}, {1.1, 1.1}};

std::vector<uint8_t> Framed(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> bytes;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(length >> (8 * i)));
  }
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

// --- FrameAssembler -------------------------------------------------------

TEST(FrameAssemblerTest, ByteAtATimeDeliveryReassemblesEveryFrame) {
  const std::vector<std::vector<uint8_t>> payloads = {
      {}, {1}, {2, 3, 4}, std::vector<uint8_t>(300, 7)};
  std::vector<uint8_t> stream;
  for (const auto& payload : payloads) {
    const auto framed = Framed(payload);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameAssembler assembler(1 << 20);
  std::vector<std::vector<uint8_t>> got;
  for (const uint8_t byte : stream) {
    assembler.Feed(std::span<const uint8_t>(&byte, 1));
    while (auto frame = assembler.Next()) got.push_back(std::move(*frame));
  }
  EXPECT_TRUE(assembler.status().ok());
  EXPECT_FALSE(assembler.mid_frame());
  ASSERT_EQ(got.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) EXPECT_EQ(got[i], payloads[i]);
}

TEST(FrameAssemblerTest, SplitAtEveryOffsetYieldsTheSameFrames) {
  const std::vector<uint8_t> first(37, 0xA1);
  const std::vector<uint8_t> second(11, 0xB2);
  std::vector<uint8_t> stream = Framed(first);
  const auto tail = Framed(second);
  stream.insert(stream.end(), tail.begin(), tail.end());
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameAssembler assembler(1 << 20);
    assembler.Feed(std::span<const uint8_t>(stream.data(), split));
    std::vector<std::vector<uint8_t>> got;
    while (auto frame = assembler.Next()) got.push_back(std::move(*frame));
    assembler.Feed(std::span<const uint8_t>(stream.data() + split,
                                            stream.size() - split));
    while (auto frame = assembler.Next()) got.push_back(std::move(*frame));
    ASSERT_EQ(got.size(), 2u) << "split at " << split;
    EXPECT_EQ(got[0], first) << "split at " << split;
    EXPECT_EQ(got[1], second) << "split at " << split;
    EXPECT_FALSE(assembler.mid_frame());
  }
}

TEST(FrameAssemblerTest, OversizedPrefixPoisonsPermanently) {
  FrameAssembler assembler(64);
  const auto bad = Framed(std::vector<uint8_t>(65, 0));
  assembler.Feed(bad);
  EXPECT_FALSE(assembler.Next().has_value());
  EXPECT_TRUE(assembler.poisoned());
  EXPECT_EQ(assembler.status().code, StatusCode::kResourceExhausted);
  // Further feeds are ignored: even a well-formed frame stays unseen.
  assembler.Feed(Framed({1, 2, 3}));
  EXPECT_FALSE(assembler.Next().has_value());
  EXPECT_TRUE(assembler.poisoned());
}

TEST(FrameAssemblerTest, FrameAtTheCeilingIsAccepted) {
  FrameAssembler assembler(64);
  const std::vector<uint8_t> payload(64, 9);
  assembler.Feed(Framed(payload));
  const auto frame = assembler.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
  EXPECT_TRUE(assembler.status().ok());
}

// --- WireServer over byte streams -----------------------------------------

TEST(WireServerStreamTest, OneByteChunksServeIdenticallyToOneShot) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(3, 25), Metric::kLInf);
  std::vector<uint8_t> input;
  for (int i = 0; i < 3; ++i) {
    const auto framed = Framed(EncodeRequest(
        MakeWireRequest(*set, kDomain, 16 + i, 16 + i, i == 0)));
    input.insert(input.end(), framed.begin(), framed.end());
  }
  SizeInfluence measure;
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = 1;

  std::vector<uint8_t> outputs[2];
  size_t chunk_sizes[2] = {0, 1};  // unthrottled vs byte-at-a-time
  for (int mode = 0; mode < 2; ++mode) {
    HeatmapEngine engine(measure, engine_options);
    WireServer server(engine);
    MemoryByteSource source(input, chunk_sizes[mode]);
    MemoryByteSink sink;
    const Status status = server.ServeStream(source, sink);
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(server.stats().requests, 3u);
    EXPECT_EQ(server.stats().ok, 3u);
    outputs[mode] = sink.bytes();
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(WireServerStreamTest, TruncatedStreamReportsDataLoss) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(4, 10), Metric::kL1);
  std::vector<uint8_t> input =
      Framed(EncodeRequest(MakeWireRequest(*set, kDomain, 8, 8, true)));
  input.resize(input.size() - 3);  // cut the last frame short
  SizeInfluence measure;
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = 1;
  HeatmapEngine engine(measure, engine_options);
  WireServer server(engine);
  MemoryByteSource source(input);
  MemoryByteSink sink;
  const Status status = server.ServeStream(source, sink);
  EXPECT_EQ(status.code, StatusCode::kDataLoss);
}

// --- Socket event loop ----------------------------------------------------

// An EventLoopServer on its own thread over a fresh single-worker engine.
class TestServer {
 public:
  Status Start(TransportKind transport, const ServeOptions& base) {
    options_ = base;
    options_.transport = transport;
    HeatmapEngineOptions engine_options;
    engine_options.num_threads = 1;
    engine_ = std::make_unique<HeatmapEngine>(measure_, engine_options);
    Listener listener;
    Status status;
    if (transport == TransportKind::kTcp) {
      status = Listener::ListenTcp("127.0.0.1", 0, &listener);
      port_ = listener.port();
    } else {
      path_ = "/tmp/rnnhm-serve-test-" + std::to_string(::getpid()) + "-" +
              std::to_string(++socket_counter_) + ".sock";
      status = Listener::ListenUnix(path_, &listener);
    }
    if (!status.ok()) return status;
    server_ = std::make_unique<EventLoopServer>(std::move(listener), *engine_,
                                                options_);
    thread_ = std::thread([this] { result_ = server_->Run(); });
    return Status::Ok();
  }

  Status Connect(int* fd) const {
    return options_.transport == TransportKind::kTcp
               ? ConnectTcp("127.0.0.1", port_, fd)
               : ConnectUnix(path_, fd);
  }

  // First shutdown request: lame-duck drain.
  void BeginShutdown() { server_->RequestShutdown(); }

  Status Stop() {
    server_->RequestShutdown();
    thread_.join();
    return result_;
  }

  EventLoopServer& server() { return *server_; }
  HeatmapEngine& engine() { return *engine_; }

 private:
  static int socket_counter_;

  SizeInfluence measure_;
  ServeOptions options_;
  std::unique_ptr<HeatmapEngine> engine_;
  std::unique_ptr<EventLoopServer> server_;
  std::thread thread_;
  Status result_;
  int port_ = 0;
  std::string path_;
};

int TestServer::socket_counter_ = 0;

ServeOptions FastOptions() {
  ServeOptions options;
  options.drain_timeout_ms = 2000;
  options.idle_timeout_ms = 0;  // tests opt in explicitly
  return options;
}

// One blocking request/response exchange.
Status RoundTrip(int fd, const std::vector<uint8_t>& request,
                 std::vector<uint8_t>* response) {
  if (const Status status = SendFrame(fd, request); !status.ok()) {
    return status;
  }
  return RecvFrame(fd, response);
}

TEST(EventLoopServerTest, RoundTripsOnEveryTransportAndPoller) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(5, 30), Metric::kL2);
  for (const TransportKind transport :
       {TransportKind::kTcp, TransportKind::kUnix}) {
    for (const bool prefer_epoll : {true, false}) {
      SCOPED_TRACE(std::string(TransportKindName(transport)) +
                   (prefer_epoll ? "/epoll" : "/poll"));
      ServeOptions options = FastOptions();
      options.prefer_epoll = prefer_epoll;
      TestServer server;
      ASSERT_TRUE(server.Start(transport, options).ok());

      int fd = -1;
      ASSERT_TRUE(server.Connect(&fd).ok());
      // Inline registration, then a by-hash request: the set must persist
      // server-side across frames.
      for (const bool inline_circles : {true, false}) {
        std::vector<uint8_t> reply;
        const Status status = RoundTrip(
            fd,
            EncodeRequest(
                MakeWireRequest(*set, kDomain, 24, 24, inline_circles)),
            &reply);
        ASSERT_TRUE(status.ok()) << status.ToString();
        std::string error;
        const auto decoded = DecodeResponse(reply, &error);
        ASSERT_TRUE(decoded.has_value()) << error;
        ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
        // Bit-identical to a direct engine execute over the same set.
        SizeInfluence measure;
        HeatmapEngineOptions engine_options;
        engine_options.num_threads = 1;
        HeatmapEngine reference(measure, engine_options);
        const CircleSetHandle handle =
            reference.registry().Register(set->circles(), set->metric());
        const HeatmapResponse expected =
            reference.Execute(HeatmapRequestV2{handle, kDomain, 24, 24});
        EXPECT_EQ(decoded->response->grid.values(), expected.grid.values());
      }
      ::close(fd);
      EXPECT_TRUE(server.Stop().ok());
      EXPECT_EQ(server.server().stats().requests, 2u);
      EXPECT_EQ(server.server().stats().ok, 2u);
    }
  }
}

TEST(EventLoopServerTest, ByteAtATimeSocketDeliveryServes) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(6, 12), Metric::kLInf);
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, FastOptions()).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  const std::vector<uint8_t> frame =
      Framed(EncodeRequest(MakeWireRequest(*set, kDomain, 12, 12, true)));
  for (const uint8_t byte : frame) {
    ASSERT_TRUE(SendAll(fd, std::span<const uint8_t>(&byte, 1)).ok());
  }
  std::vector<uint8_t> reply;
  ASSERT_TRUE(RecvFrame(fd, &reply).ok());
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
  ::close(fd);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(EventLoopServerTest, OversizedFrameGetsAnErrorReplyThenClose) {
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, FastOptions()).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  // A length prefix over the ceiling. SendFrame itself refuses such
  // payloads, so write the poisoned prefix by hand.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<uint8_t>(huge >> (8 * i));
  ASSERT_TRUE(SendAll(fd, std::span<const uint8_t>(prefix, 4)).ok());
  std::vector<uint8_t> reply;
  ASSERT_TRUE(RecvFrame(fd, &reply).ok());
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kMalformedRequest);
  // The connection is closed after the error frame drains.
  const Status eof = RecvFrame(fd, &reply);
  EXPECT_EQ(eof.code, StatusCode::kUnavailable);
  EXPECT_EQ(eof.message, "end of stream");
  ::close(fd);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(EventLoopServerTest, ConnectionsBeyondTheLimitAreClosed) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(7, 8), Metric::kL1);
  ServeOptions options = FastOptions();
  options.max_connections = 1;
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, options).ok());
  int keeper = -1;
  ASSERT_TRUE(server.Connect(&keeper).ok());
  // A round trip guarantees the first connection is registered before the
  // second arrives.
  std::vector<uint8_t> reply;
  ASSERT_TRUE(
      RoundTrip(keeper,
                EncodeRequest(MakeWireRequest(*set, kDomain, 8, 8, true)),
                &reply)
          .ok());
  int rejected = -1;
  ASSERT_TRUE(server.Connect(&rejected).ok());  // accept + immediate close
  const Status status = RecvFrame(rejected, &reply);
  EXPECT_EQ(status.code, StatusCode::kUnavailable);  // clean EOF
  ::close(rejected);
  ::close(keeper);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(EventLoopServerTest, IdleConnectionsAreReaped) {
  ServeOptions options = FastOptions();
  options.idle_timeout_ms = 100;
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, options).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  std::vector<uint8_t> reply;
  // Never send anything: the server must hang up on its own.
  const Status status = RecvFrame(fd, &reply);
  EXPECT_EQ(status.code, StatusCode::kUnavailable);
  EXPECT_EQ(status.message, "end of stream");
  ::close(fd);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(EventLoopServerTest, SlowReaderBackpressuresIntoServerMemory) {
  // Fire a burst of requests without reading a single response: the
  // responses (64x64 doubles each, ~1.3 MB total) exceed typical socket
  // buffers, so the server must park the overflow in its OutputBuffer
  // without stalling. Then drain everything and check order.
  const auto set = CircleSetSnapshot::Make(MakeCircles(8, 20), Metric::kLInf);
  constexpr int kBurst = 40;
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, FastOptions()).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(
        SendFrame(fd, EncodeRequest(MakeWireRequest(*set, kDomain, 64, 64,
                                                    /*inline=*/i == 0)))
            .ok());
  }
  for (int i = 0; i < kBurst; ++i) {
    std::vector<uint8_t> reply;
    ASSERT_TRUE(RecvFrame(fd, &reply).ok()) << "response " << i;
    std::string error;
    const auto decoded = DecodeResponse(reply, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(decoded->status, WireStatus::kOk) << "response " << i;
  }
  ::close(fd);
  EXPECT_TRUE(server.Stop().ok());
  EXPECT_EQ(server.server().stats().requests,
            static_cast<uint64_t>(kBurst));
}

TEST(EventLoopServerTest, DisconnectReleasesTheConnectionsRegistrations) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(10, 10), Metric::kLInf);
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, FastOptions()).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  std::vector<uint8_t> reply;
  ASSERT_TRUE(
      RoundTrip(fd, EncodeRequest(MakeWireRequest(*set, kDomain, 10, 10, true)),
                &reply)
          .ok());
  std::string error;
  ASSERT_EQ(DecodeResponse(reply, &error)->status, WireStatus::kOk);
  EXPECT_EQ(server.engine().registry().size(), 1u);
  ::close(fd);
  // The hangup lands asynchronously; the connection's RegistrationScope
  // releases its registrations when the loop reaps the fd. The engine's
  // registry has no retention budget here, so the entry is erased.
  for (int i = 0; i < 400 && server.engine().registry().size() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.engine().registry().size(), 0u);

  // A fresh connection asking by hash gets a clean error, not stale data.
  int fd2 = -1;
  ASSERT_TRUE(server.Connect(&fd2).ok());
  ASSERT_TRUE(RoundTrip(fd2,
                        EncodeRequest(MakeWireRequest(*set, kDomain, 10, 10,
                                                      /*include=*/false)),
                        &reply)
                  .ok());
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kUnknownCircleSet);
  ::close(fd2);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(EventLoopServerTest, PerConnectionSetCapReleasesTheOldest) {
  ServeOptions options = FastOptions();
  options.max_conn_sets = 2;
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, options).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  const auto s0 = CircleSetSnapshot::Make(MakeCircles(11, 8), Metric::kL2);
  const auto s1 = CircleSetSnapshot::Make(MakeCircles(12, 8), Metric::kL2);
  const auto s2 = CircleSetSnapshot::Make(MakeCircles(13, 8), Metric::kL2);
  std::vector<uint8_t> reply;
  std::string error;
  for (const auto* set : {&s0, &s1, &s2}) {
    ASSERT_TRUE(RoundTrip(fd,
                          EncodeRequest(MakeWireRequest(**set, kDomain, 8, 8,
                                                        /*include=*/true)),
                          &reply)
                    .ok());
    ASSERT_EQ(DecodeResponse(reply, &error)->status, WireStatus::kOk);
  }
  // Tracking s2 pushed s0 past the 2-set connection budget: its
  // registration was released synchronously, before s2's response.
  const WireStatus expected[3] = {WireStatus::kUnknownCircleSet,
                                  WireStatus::kOk, WireStatus::kOk};
  const CircleSetSnapshot* sets[3] = {s0.get(), s1.get(), s2.get()};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(RoundTrip(fd,
                          EncodeRequest(MakeWireRequest(*sets[i], kDomain, 8, 8,
                                                        /*include=*/false)),
                          &reply)
                    .ok());
    const auto decoded = DecodeResponse(reply, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(decoded->status, expected[i]) << "set " << i;
  }
  ::close(fd);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(EventLoopServerTest, GracefulShutdownDrainsInFlightConnections) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(9, 15), Metric::kL2);
  TestServer server;
  ASSERT_TRUE(server.Start(TransportKind::kTcp, FastOptions()).ok());
  int fd = -1;
  ASSERT_TRUE(server.Connect(&fd).ok());
  // Prove the connection is live before the shutdown lands.
  std::vector<uint8_t> reply;
  ASSERT_TRUE(
      RoundTrip(fd, EncodeRequest(MakeWireRequest(*set, kDomain, 16, 16, true)),
                &reply)
          .ok());
  server.BeginShutdown();
  // Lame-duck: the existing connection keeps being served...
  const Status status = RoundTrip(
      fd, EncodeRequest(MakeWireRequest(*set, kDomain, 20, 20, false)),
      &reply);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
  // ...while new connections are refused (listener closed) or, if the
  // shutdown has not landed yet, at least never left half-served.
  for (int attempt = 0; attempt < 50; ++attempt) {
    int late = -1;
    if (!server.Connect(&late).ok()) break;  // listener gone: expected
    ::close(late);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);  // lets the drain finish
  EXPECT_TRUE(server.Stop().ok());
}

}  // namespace
}  // namespace rnnhm
