// Wire-delta differential tests: a randomized session replay shipped as
// v4 delta frames must leave every server holding exactly the circles a
// from-scratch client would, and every served raster must be
// bit-identical to the sequential from-scratch build — per tick, at
// every slab decomposition, and through a forked 2-shard router whose
// delta frames hop shards by base-hash affinity.
//
// The router harness forks its fleet FIRST, while the test process is
// still single-threaded (same contract as shard_router_test.cc).
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "query/heatmap_session.h"
#include "query/wire.h"
#include "serve/options.h"
#include "serve/shard_router.h"
#include "serve/transport.h"
#include "serve/wire_server.h"

namespace rnnhm {
namespace {

const Rect kDomain{{-0.1, -0.1}, {1.1, 1.1}};
constexpr int kSize = 28;
constexpr int kNumDeltas = 40;

std::vector<Point> RandomPoints(int n, Rng& rng) {
  std::vector<Point> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  return out;
}

// One replay's worth of ground truth: the frames that travel and the
// circle vector the server must be holding after each of them.
struct ReplayCorpus {
  std::vector<std::vector<uint8_t>> frames;    // [0] inline, then deltas
  std::vector<std::vector<NnCircle>> circles;  // state after frames[i]
  std::vector<uint64_t> hashes;                // content hash per tick
};

// Mirrors `rnnhm wire-pack --deltas`: a HeatmapSession replays random
// edits with the journal on; every tick ships as one delta frame naming
// the previous tick's hash and carrying the drained edit journal.
ReplayCorpus BuildReplay(Metric metric, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> clients = RandomPoints(30, rng);
  std::vector<Point> facilities = RandomPoints(6, rng);
  HeatmapSession session(std::move(clients), std::move(facilities), metric);
  ReplayCorpus corpus;
  const auto base = CircleSetSnapshot::Make(session.circles(), metric);
  corpus.frames.push_back(EncodeRequest(MakeWireRequest(
      *base, kDomain, kSize, kSize, /*include_circles=*/true)));
  corpus.circles.push_back(session.circles());
  corpus.hashes.push_back(base->content_hash());
  session.EnableEditJournal();
  uint64_t prev_hash = base->content_hash();
  for (int tick = 0; tick < kNumDeltas; ++tick) {
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      session.MoveClient(
          static_cast<int32_t>(rng.NextBounded(session.num_clients())),
          {rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (dice < 0.75) {
      session.AddClient({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else if (dice < 0.9 || session.num_facilities() < 2) {
      session.AddFacility({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    } else {
      session.RemoveFacility(
          static_cast<int32_t>(rng.NextBounded(session.num_facilities())));
    }
    WireDeltaRequest delta;
    delta.metric = metric;
    delta.base_hash = prev_hash;
    delta.edits = session.TakeCircleEdits();
    delta.new_hash = HashCircleSet(session.circles(), metric);
    delta.domain = kDomain;
    delta.width = kSize;
    delta.height = kSize;
    corpus.frames.push_back(EncodeDeltaRequest(delta));
    corpus.circles.push_back(session.circles());
    corpus.hashes.push_back(delta.new_hash);
    prev_hash = delta.new_hash;
  }
  return corpus;
}

TEST(WireDeltaDifferentialTest, ReplayMatchesFromScratchAtEverySlabCount) {
  for (const Metric metric : {Metric::kLInf, Metric::kL2, Metric::kL1}) {
    SCOPED_TRACE("metric " + std::to_string(static_cast<int>(metric)));
    const ReplayCorpus corpus = BuildReplay(metric, 77);
    for (const int slabs : {1, 2, 4, 8}) {
      SCOPED_TRACE("slabs " + std::to_string(slabs));
      SizeInfluence measure;
      HeatmapEngineOptions options;
      options.num_threads = 1;
      options.slabs_per_request = slabs;
      options.cache_bytes = 16 << 20;  // keeps every tick's raster spliceable
      HeatmapEngine engine(measure, options);
      WireServer server(engine);
      SizeInfluence reference_measure;
      for (size_t i = 0; i < corpus.frames.size(); ++i) {
        const auto reply = server.HandleFrame(corpus.frames[i]);
        std::string error;
        const auto decoded = DecodeResponse(reply, &error);
        ASSERT_TRUE(decoded.has_value()) << error;
        ASSERT_EQ(decoded->status, WireStatus::kOk)
            << "tick " << i << ": " << decoded->error;
        // The reference is always the sequential from-scratch recipe over
        // the tick's full circle vector — no deltas, no slabs, no cache.
        const HeatmapGrid reference =
            BuildHeatmapForMetric(metric, corpus.circles[i], reference_measure,
                                  kDomain, kSize, kSize);
        ASSERT_EQ(decoded->response->grid.values(), reference.values())
            << "tick " << i;
      }
      EXPECT_EQ(server.stats().deltas, static_cast<uint64_t>(kNumDeltas));
      EXPECT_EQ(server.stats().errors, 0u);
      if (metric == Metric::kL1) {
        // L1 dirty columns are not separable: every delta falls back to a
        // full resweep, never a splice.
        EXPECT_EQ(server.stats().delta_splices, 0u);
      } else {
        // Same geometry every tick, so every delta deriving a set not
        // seen before takes the splice path; a tick whose edits change
        // nothing (e.g. a facility that shrinks no circle) re-derives an
        // already-cached hash and is answered from the result cache.
        uint64_t fresh = 0;
        for (size_t i = 1; i < corpus.hashes.size(); ++i) {
          bool seen = false;
          for (size_t j = 0; j < i; ++j) {
            seen = seen || corpus.hashes[j] == corpus.hashes[i];
          }
          if (!seen) ++fresh;
        }
        EXPECT_EQ(server.stats().delta_splices, fresh);
      }
    }
  }
}

// --- The 2-shard router leg ----------------------------------------------

class RouterHarness {
 public:
  ~RouterHarness() {
    if (router_ != nullptr && thread_.joinable()) Stop();
  }

  Status Start(int num_shards, int worker_slabs) {
    options_.transport = TransportKind::kUnix;
    options_.num_shards = num_shards;
    options_.threads = 1;
    options_.slabs = worker_slabs;
    options_.idle_timeout_ms = 0;
    options_.drain_timeout_ms = 2000;
    options_.socket_dir = "/tmp/rnnhm-delta-diff-test-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(++harness_counter_);
    // Fork the workers before this process grows any threads.
    if (const Status status = ShardFleet::Spawn(options_, &fleet_);
        !status.ok()) {
      return status;
    }
    front_path_ = options_.socket_dir + "/front.sock";
    Listener front;
    if (const Status status = Listener::ListenUnix(front_path_, &front);
        !status.ok()) {
      return status;
    }
    router_ = std::make_unique<ShardRouter>(std::move(front),
                                            fleet_.socket_paths(), options_);
    thread_ = std::thread([this] { result_ = router_->Run(); });
    return Status::Ok();
  }

  Status Connect(int* fd) const { return ConnectUnix(front_path_, fd); }

  Status Stop() {
    router_->RequestShutdown();
    thread_.join();
    fleet_.Shutdown();
    return result_;
  }

 private:
  static int harness_counter_;

  ServeOptions options_;
  ShardFleet fleet_;
  std::string front_path_;
  std::unique_ptr<ShardRouter> router_;
  std::thread thread_;
  Status result_;
};

int RouterHarness::harness_counter_ = 0;

Status RoundTrip(int fd, const std::vector<uint8_t>& request,
                 std::vector<uint8_t>* response) {
  if (const Status status = SendFrame(fd, request); !status.ok()) {
    return status;
  }
  return RecvFrame(fd, response);
}

TEST(WireDeltaDifferentialTest, ReplayThroughATwoShardRouterMatches) {
  // Fork first — the corpus and reference builds come after.
  RouterHarness harness;
  ASSERT_TRUE(harness.Start(/*num_shards=*/2, /*worker_slabs=*/2).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  const Metric metric = Metric::kLInf;
  const ReplayCorpus corpus = BuildReplay(metric, 78);
  SizeInfluence measure;
  for (size_t i = 0; i < corpus.frames.size(); ++i) {
    std::vector<uint8_t> reply;
    ASSERT_TRUE(RoundTrip(fd, corpus.frames[i], &reply).ok()) << "tick " << i;
    std::string error;
    const auto decoded = DecodeResponse(reply, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    // Every delta names the previous tick's derived set as its base; the
    // chain only survives if the router pins each derived hash to the
    // shard that applied the delta (hash % 2 would scatter it).
    ASSERT_EQ(decoded->status, WireStatus::kOk)
        << "tick " << i << ": " << decoded->error;
    const HeatmapGrid reference = BuildHeatmapForMetric(
        metric, corpus.circles[i], measure, kDomain, kSize, kSize);
    ASSERT_EQ(decoded->response->grid.values(), reference.values())
        << "tick " << i;
  }

  // Derived-hash affinity also covers plain by-hash requests: the final
  // tick's set was registered by a delta, never inline.
  const auto final_set =
      CircleSetSnapshot::Make(corpus.circles.back(), metric);
  ASSERT_EQ(final_set->content_hash(), corpus.hashes.back());
  std::vector<uint8_t> reply;
  ASSERT_TRUE(RoundTrip(fd,
                        EncodeRequest(MakeWireRequest(
                            *final_set, kDomain, kSize, kSize,
                            /*include_circles=*/false)),
                        &reply)
                  .ok());
  std::string error;
  const auto by_hash = DecodeResponse(reply, &error);
  ASSERT_TRUE(by_hash.has_value()) << error;
  EXPECT_EQ(by_hash->status, WireStatus::kOk) << by_hash->error;

  // The merged fleet stats account for every delta the replay shipped.
  ASSERT_TRUE(RoundTrip(fd, EncodeStatsRequest(), &reply).ok());
  const auto stats = DecodeStatsResponse(reply, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->shards, 2u);
  EXPECT_EQ(stats->deltas, static_cast<uint64_t>(kNumDeltas));
  EXPECT_EQ(stats->errors, 0u);

  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

}  // namespace
}  // namespace rnnhm
