#include "query/circle_set_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

TEST(CircleSetSnapshotTest, HashMatchesFreeFunctionAndIsContentSensitive) {
  const auto circles = MakeCircles(1, 30);
  const auto set = CircleSetSnapshot::Make(circles, Metric::kL2);
  EXPECT_EQ(set->content_hash(), HashCircleSet(circles, Metric::kL2));
  EXPECT_NE(set->content_hash(), HashCircleSet(circles, Metric::kLInf));
  auto nudged = circles;
  nudged[7].radius += 1e-12;
  EXPECT_NE(set->content_hash(), HashCircleSet(nudged, Metric::kL2));
  EXPECT_TRUE(set->SameContent(circles, Metric::kL2));
  EXPECT_FALSE(set->SameContent(circles, Metric::kLInf));
  EXPECT_FALSE(set->SameContent(nudged, Metric::kL2));
}

TEST(CircleSetRegistryTest, RegisterDeduplicatesIdenticalContent) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(2, 40);
  const CircleSetHandle a = registry.Register(circles, Metric::kLInf);
  const CircleSetHandle b = registry.Register(circles, Metric::kLInf);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  // Deduplicated registrations resolve to the very same snapshot object.
  EXPECT_EQ(registry.Resolve(a).get(), registry.Resolve(b).get());
}

TEST(CircleSetRegistryTest, DistinctContentGetsDistinctHandles) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(3, 40), Metric::kLInf);
  const CircleSetHandle b =
      registry.Register(MakeCircles(4, 40), Metric::kLInf);
  // Same circles, different metric: different content.
  const CircleSetHandle c =
      registry.Register(MakeCircles(3, 40), Metric::kL2);
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_NE(a.content_hash, c.content_hash);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(CircleSetRegistryTest, ResolveRejectsForgedAndUnknownHandles) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(5, 20), Metric::kL1);
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_EQ(registry.Resolve(CircleSetHandle{}), nullptr);
  EXPECT_EQ(registry.Resolve(CircleSetHandle{a.id + 999, a.content_hash}),
            nullptr);
  // Right id, wrong hash: a stale or forged handle must not resolve.
  EXPECT_EQ(registry.Resolve(CircleSetHandle{a.id, a.content_hash ^ 1}),
            nullptr);
}

TEST(CircleSetRegistryTest, FindByHashLocatesRegisteredContent) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(6, 25);
  const CircleSetHandle a = registry.Register(circles, Metric::kL2);
  EXPECT_EQ(registry.FindByHash(a.content_hash), a);
  EXPECT_FALSE(registry.FindByHash(a.content_hash ^ 1).valid());
}

TEST(CircleSetRegistryTest, ReleaseIsRefCounted) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(7, 30);
  const CircleSetHandle a = registry.Register(circles, Metric::kLInf);
  const CircleSetHandle b = registry.Register(circles, Metric::kLInf);
  ASSERT_EQ(a, b);  // two registrations of one entry
  EXPECT_TRUE(registry.Release(a));
  EXPECT_EQ(registry.size(), 1u);  // one registration still holds it
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_TRUE(registry.Release(a));
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Resolve(a), nullptr);
  EXPECT_FALSE(registry.Release(a));  // already gone
}

TEST(CircleSetRegistryTest, SnapshotsOutliveRelease) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(8, 30), Metric::kLInf);
  const std::shared_ptr<const CircleSetSnapshot> pinned =
      registry.Resolve(a);
  ASSERT_NE(pinned, nullptr);
  EXPECT_TRUE(registry.Release(a));
  // The registry dropped its reference; ours keeps the data alive.
  EXPECT_EQ(pinned->circles().size(), 30u);
  EXPECT_EQ(pinned->content_hash(), a.content_hash);
}

TEST(CircleSetRegistryTest, ReRegisteringReleasedContentIssuesFreshId) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(9, 15);
  const CircleSetHandle a = registry.Register(circles, Metric::kL2);
  ASSERT_TRUE(registry.Release(a));
  const CircleSetHandle b = registry.Register(circles, Metric::kL2);
  EXPECT_NE(a.id, b.id);  // ids are never reused
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(registry.Resolve(a), nullptr);
  EXPECT_NE(registry.Resolve(b), nullptr);
}

// Parallel Register/Resolve/Release over a small pool of contents; run
// under ASan/TSan. Every thread re-registers each content it resolves, so
// entries stay live while in use, and the final counts must balance.
TEST(CircleSetRegistryTest, ConcurrentRegisterResolveReleaseIsSafe) {
  CircleSetRegistry registry;
  constexpr int kContents = 5;
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::vector<NnCircle>> contents;
  for (int c = 0; c < kContents; ++c) {
    contents.push_back(MakeCircles(100 + c, 20));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto& circles = contents[(t + i) % kContents];
        const CircleSetHandle handle =
            registry.Register(circles, Metric::kLInf);
        const auto set = registry.Resolve(handle);
        if (set == nullptr ||
            !set->SameContent(circles, Metric::kLInf)) {
          ++mismatches;
        }
        registry.Release(handle);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(registry.size(), 0u);  // every registration was released
}

// --- Hash/equality correctness (the -0.0 and NaN pitfalls) ----------------

TEST(CircleSetRegistryTest, NegativeZeroDeduplicatesWithPositiveZero) {
  // -0.0 == +0.0 under operator==, so these two sets MUST also hash
  // identically — otherwise SameContent says "equal" while the hash
  // buckets disagree, and dedup depends on which bucket is probed.
  std::vector<NnCircle> plus = MakeCircles(20, 10);
  plus[3].center.x = 0.0;
  plus[5].radius = 0.0;
  std::vector<NnCircle> minus = plus;
  minus[3].center.x = -0.0;
  minus[5].radius = -0.0;
  EXPECT_EQ(HashCircleSet(plus, Metric::kLInf),
            HashCircleSet(minus, Metric::kLInf));
  CircleSetRegistry registry;
  const CircleSetHandle a = registry.Register(plus, Metric::kLInf);
  const CircleSetHandle b = registry.Register(minus, Metric::kLInf);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(CircleSetRegistryTest, NanMembersCompareEqualToThemselves) {
  // A NaN coordinate must not make a set unequal to itself: comparison is
  // bitwise, so re-registering the same NaN-bearing content deduplicates
  // instead of spawning a fresh entry per registration.
  std::vector<NnCircle> circles = MakeCircles(21, 8);
  circles[2].center.y = std::numeric_limits<double>::quiet_NaN();
  CircleSetRegistry registry;
  const CircleSetHandle a = registry.Register(circles, Metric::kL2);
  const CircleSetHandle b = registry.Register(circles, Metric::kL2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  const auto set = registry.Resolve(a);
  ASSERT_NE(set, nullptr);
  EXPECT_TRUE(set->SameContent(circles, Metric::kL2));
}

// --- Collision behavior (satellite: FindByHash must not guess) ------------

TEST(CircleSetRegistryTest, FindByHashRefusesAmbiguousCollision) {
  CircleSetRegistry registry;
  const auto content_a = MakeCircles(22, 12);
  const auto content_b = MakeCircles(23, 12);
  const uint64_t forced = 0xDEADBEEFCAFEF00Dull;
  const CircleSetHandle a =
      registry.RegisterWithHashForTesting(content_a, Metric::kLInf, forced);
  const CircleSetHandle b =
      registry.RegisterWithHashForTesting(content_b, Metric::kLInf, forced);
  ASSERT_NE(a.id, b.id);
  EXPECT_EQ(registry.size(), 2u);
  // Two distinct contents under one hash: the hash alone cannot name
  // either set, so the lookup must refuse rather than resolve the wrong
  // circle set.
  EXPECT_FALSE(registry.FindByHash(forced).valid());
  // The handles themselves still resolve — only by-hash naming is
  // ambiguous.
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_NE(registry.Resolve(b), nullptr);
}

TEST(CircleSetRegistryTest, CollidedEntryResolvesContentWithRealHash) {
  // A single forced-collision entry: FindByHash returns it, but the
  // snapshot's true content hash differs from the filed hash — exactly
  // what the wire path's content-hash verification must catch.
  CircleSetRegistry registry;
  const auto circles = MakeCircles(24, 12);
  const uint64_t forced = HashCircleSet(circles, Metric::kLInf) ^ 0x1234;
  const CircleSetHandle handle =
      registry.RegisterWithHashForTesting(circles, Metric::kLInf, forced);
  const CircleSetHandle found = registry.FindByHash(forced);
  ASSERT_TRUE(found.valid());
  EXPECT_EQ(found, handle);
  const auto set = registry.Resolve(found);
  ASSERT_NE(set, nullptr);
  EXPECT_NE(set->content_hash(), forced);
}

// --- Retention / eviction -------------------------------------------------

TEST(CircleSetRegistryTest, RetentionKeepsReleasedEntriesResolvable) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 2;
  CircleSetRegistry registry(options);
  const CircleSetHandle a =
      registry.Register(MakeCircles(30, 10), Metric::kLInf);
  EXPECT_TRUE(registry.Release(a));
  // Fully released but retained: still resolvable, by handle and by hash.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.unpinned_entries(), 1u);
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_EQ(registry.FindByHash(a.content_hash), a);
}

TEST(CircleSetRegistryTest, EvictionIsLruOrdered) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 2;
  CircleSetRegistry registry(options);
  const CircleSetHandle a =
      registry.Register(MakeCircles(31, 10), Metric::kLInf);
  const CircleSetHandle b =
      registry.Register(MakeCircles(32, 10), Metric::kLInf);
  const CircleSetHandle c =
      registry.Register(MakeCircles(33, 10), Metric::kLInf);
  EXPECT_TRUE(registry.Release(a));
  EXPECT_TRUE(registry.Release(b));
  // Touch a: it becomes most recently used of the two unpinned entries.
  EXPECT_NE(registry.Resolve(a), nullptr);
  // Releasing c overflows the budget of 2; the LRU victim is b, not a.
  EXPECT_TRUE(registry.Release(c));
  EXPECT_EQ(registry.total_evicted(), 1u);
  EXPECT_EQ(registry.Resolve(b), nullptr);
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_NE(registry.Resolve(c), nullptr);
}

TEST(CircleSetRegistryTest, ByteBudgetEvicts) {
  CircleSetRegistryOptions options;
  options.max_unpinned_bytes = 12 * sizeof(NnCircle);
  CircleSetRegistry registry(options);
  const CircleSetHandle a =
      registry.Register(MakeCircles(34, 10), Metric::kLInf);
  const CircleSetHandle b =
      registry.Register(MakeCircles(35, 10), Metric::kLInf);
  EXPECT_TRUE(registry.Release(a));
  EXPECT_EQ(registry.unpinned_entries(), 1u);  // 10 circles fit
  EXPECT_TRUE(registry.Release(b));
  // 20 circles exceed the 12-circle byte budget: the older entry goes.
  EXPECT_EQ(registry.total_evicted(), 1u);
  EXPECT_EQ(registry.Resolve(a), nullptr);
  EXPECT_NE(registry.Resolve(b), nullptr);
}

TEST(CircleSetRegistryTest, ReRegisteringUnpinnedContentRepins) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 4;
  CircleSetRegistry registry(options);
  const auto circles = MakeCircles(36, 10);
  const CircleSetHandle a = registry.Register(circles, Metric::kLInf);
  EXPECT_TRUE(registry.Release(a));
  EXPECT_EQ(registry.unpinned_entries(), 1u);
  // Same content comes back: the retained entry re-pins under its
  // original id (ids are stable for resident content).
  const CircleSetHandle b = registry.Register(circles, Metric::kLInf);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.unpinned_entries(), 0u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(CircleSetRegistryTest, ReleaseOfUnpinnedEntryCannotUnderflow) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 4;
  CircleSetRegistry registry(options);
  const auto circles = MakeCircles(37, 10);
  const CircleSetHandle a = registry.Register(circles, Metric::kLInf);
  EXPECT_TRUE(registry.Release(a));
  // A second release of the retained (zero-registration) entry is a safe
  // no-op — NOT an underflow that would wedge the count at a huge value.
  EXPECT_FALSE(registry.Release(a));
  EXPECT_FALSE(registry.Release(a));
  // Re-register then release once: the counts still balance.
  const CircleSetHandle b = registry.Register(circles, Metric::kLInf);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(registry.Release(b));
  EXPECT_EQ(registry.unpinned_entries(), 1u);
}

// --- ApplyDelta -----------------------------------------------------------

TEST(CircleSetRegistryTest, ApplyDeltaReplaceAppendSwapRemove) {
  CircleSetRegistry registry;
  auto circles = MakeCircles(40, 5);
  const CircleSetHandle base = registry.Register(circles, Metric::kLInf);

  const NnCircle moved{{0.5, 0.5}, 0.1, 1};
  const NnCircle added{{0.9, 0.1}, 0.05, 5};
  const std::vector<CircleSetEdit> edits = {
      {CircleSetEdit::Kind::kReplace, 1, moved},
      {CircleSetEdit::Kind::kAppend, 0, added},
      {CircleSetEdit::Kind::kSwapRemove, 0, {}},
  };
  // Mirror the edits locally to predict the derived content.
  auto expected = circles;
  expected[1] = moved;
  expected.push_back(added);
  expected[0] = expected.back();
  expected.pop_back();

  CircleSetHandle derived;
  DirtyRegionSet dirty;
  std::shared_ptr<const CircleSetSnapshot> base_set;
  const Status status =
      registry.ApplyDelta(base, edits,
                          HashCircleSet(expected, Metric::kLInf), &derived,
                          &dirty, &base_set);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(derived.valid());
  ASSERT_NE(base_set, nullptr);
  EXPECT_EQ(base_set->content_hash(), base.content_hash);
  const auto derived_set = registry.Resolve(derived);
  ASSERT_NE(derived_set, nullptr);
  EXPECT_TRUE(derived_set->SameContent(expected, Metric::kLInf));
  EXPECT_FALSE(dirty.empty());
  // Base and derived are both resident (the base registration is intact).
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.Resolve(base), nullptr);
}

TEST(CircleSetRegistryTest, ApplyDeltaRejectsBadIndexAndHashMismatch) {
  CircleSetRegistry registry;
  const CircleSetHandle base =
      registry.Register(MakeCircles(41, 4), Metric::kL2);
  CircleSetHandle derived;

  const std::vector<CircleSetEdit> out_of_range = {
      {CircleSetEdit::Kind::kReplace, 99, NnCircle{{0, 0}, 0.1, 0}}};
  EXPECT_EQ(registry.ApplyDelta(base, out_of_range, std::nullopt, &derived)
                .code,
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(derived.valid());
  EXPECT_EQ(registry.size(), 1u);  // nothing registered on failure

  const std::vector<CircleSetEdit> fine = {
      {CircleSetEdit::Kind::kReplace, 0, NnCircle{{0, 0}, 0.1, 0}}};
  EXPECT_EQ(registry.ApplyDelta(base, fine, uint64_t{0x1234}, &derived).code,
            StatusCode::kInvalidArgument);  // wrong expected hash
  EXPECT_FALSE(derived.valid());
  EXPECT_EQ(registry.size(), 1u);

  EXPECT_TRUE(registry.ApplyDelta(base, fine, std::nullopt, &derived).ok());
  EXPECT_TRUE(derived.valid());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(CircleSetRegistryTest, ApplyDeltaFromReleasedBaseIsNotFound) {
  CircleSetRegistry registry;  // no retention: release erases
  const CircleSetHandle base =
      registry.Register(MakeCircles(42, 4), Metric::kLInf);
  ASSERT_TRUE(registry.Release(base));
  CircleSetHandle derived;
  const std::vector<CircleSetEdit> edits = {
      {CircleSetEdit::Kind::kReplace, 0, NnCircle{{0, 0}, 0.1, 0}}};
  EXPECT_EQ(registry.ApplyDelta(base, edits, std::nullopt, &derived).code,
            StatusCode::kNotFound);
  EXPECT_FALSE(derived.valid());
}

// --- RegistrationScope ----------------------------------------------------

TEST(RegistrationScopeTest, ReleasesTrackedHandlesOnDestruction) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(50, 8), Metric::kLInf);
  {
    RegistrationScope scope(&registry);
    scope.Track(a);
    EXPECT_EQ(scope.tracked(), 1u);
    EXPECT_EQ(registry.size(), 1u);
  }
  // Scope death released the only registration: entry gone (no retention).
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistrationScopeTest, CapReleasesOldestFirst) {
  CircleSetRegistry registry;
  RegistrationScope scope(&registry, /*max_tracked=*/2);
  const CircleSetHandle a =
      registry.Register(MakeCircles(51, 8), Metric::kLInf);
  const CircleSetHandle b =
      registry.Register(MakeCircles(52, 8), Metric::kLInf);
  const CircleSetHandle c =
      registry.Register(MakeCircles(53, 8), Metric::kLInf);
  scope.Track(a);
  scope.Track(b);
  scope.Track(c);  // pushes a out
  EXPECT_EQ(scope.tracked(), 2u);
  EXPECT_EQ(registry.Resolve(a), nullptr);
  EXPECT_NE(registry.Resolve(b), nullptr);
  EXPECT_NE(registry.Resolve(c), nullptr);
}

// --- Bounded-memory soak (the tentpole's acceptance bar) ------------------

TEST(CircleSetRegistryTest, SoakTenThousandSetsStaysBounded) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 64;
  CircleSetRegistry registry(options);
  constexpr int kSets = 10000;
  constexpr size_t kCirclesPerSet = 4;
  for (int i = 0; i < kSets; ++i) {
    const CircleSetHandle handle =
        registry.Register(MakeCircles(1000 + i, kCirclesPerSet),
                          Metric::kLInf);
    ASSERT_TRUE(handle.valid());
    registry.Release(handle);
  }
  // Resident state is capped by the retention budget, not the set count.
  EXPECT_LE(registry.size(), options.max_unpinned_entries);
  EXPECT_LE(registry.resident_bytes(),
            options.max_unpinned_entries * kCirclesPerSet * sizeof(NnCircle));
  EXPECT_GE(registry.total_evicted(),
            static_cast<size_t>(kSets) - options.max_unpinned_entries);
}

// --- Concurrency ----------------------------------------------------------

// Readers (Resolve + FindByHash) hammer a set of pinned and *unpinned*
// handles — unpinned so every hit also splices LRU recency, the one write
// lookups perform — while a writer churns registrations, releases, and
// deltas. Exercises the shared-lock read path against concurrent
// exclusive mutations; every resolve must return the right content or a
// clean miss, never a torn entry.
// Lock-order smoke test for the registry's two-mutex protocol (exclusive
// or shared mu_ first, leaf lru_mu_ second — the order the annotations in
// circle_set_registry.h encode). Resolve-under-load takes shared mu_ and
// then lru_mu_ for the LRU touch, while a churning writer drives the
// eviction sweep, which takes exclusive mu_ and then lru_mu_ repeatedly.
// Run under TSan (RNNHM_TSAN) this catches an unlocked touch at runtime;
// a *reversed* acquisition would already be a Clang compile error via
// RNNHM_ACQUIRED_AFTER, so the pair of checkers covers both failure
// modes.
TEST(CircleSetRegistryStressTest, LockOrderResolveUnderLoadDuringEviction) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 4;  // tiny budget: every churn evicts
  CircleSetRegistry registry(options);

  // A pool of retained-but-unpinned sets for the readers to resolve: each
  // Resolve touches the LRU (shared mu_ -> lru_mu_).
  constexpr int kPool = 8;
  std::vector<CircleSetHandle> pool;
  for (int s = 0; s < kPool; ++s) {
    pool.push_back(registry.Register(MakeCircles(4200 + s, 8), Metric::kL2));
    ASSERT_TRUE(pool.back().valid());
  }

  constexpr int kReaders = 3;
  constexpr int kIters = 2000;
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load()) {
      }
      for (int i = 0; i < kIters; ++i) {
        // A resolved handle may have been evicted by the churner after
        // its release below — either outcome is valid; the test's
        // assertion is TSan's (and the annotations') silence.
        (void)registry.Resolve(pool[(t + i) % kPool]);
        (void)registry.FindByHash(pool[(t + i) % kPool].content_hash);
      }
    });
  }
  std::thread churner([&] {
    while (!start.load()) {
    }
    // Register + release churn: every release funnels an entry into the
    // unpinned LRU and every registration past the budget runs the
    // eviction sweep (exclusive mu_ -> lru_mu_, held across the loop).
    for (int i = 0; i < kIters && !stop.load(); ++i) {
      const CircleSetHandle h =
          registry.Register(MakeCircles(9100 + i, 6), Metric::kL2);
      ASSERT_TRUE(h.valid());
      ASSERT_TRUE(registry.Release(h));
    }
  });
  // Release the pool mid-flight so reader touches and evictions overlap
  // on the same entries.
  start.store(true);
  for (int s = 0; s < kPool; ++s) {
    ASSERT_TRUE(registry.Release(pool[s]));
  }
  for (std::thread& t : readers) t.join();
  stop.store(true);
  churner.join();

  // The budget must have held under the churn.
  EXPECT_LE(registry.unpinned_entries(), 4u);
}

TEST(CircleSetRegistryStressTest, ContendedReadersSurviveConcurrentWrites) {
  CircleSetRegistryOptions options;
  options.max_unpinned_entries = 16;  // retention on: touches splice LRU
  CircleSetRegistry registry(options);

  constexpr int kStableSets = 8;
  std::vector<std::vector<NnCircle>> contents;
  std::vector<CircleSetHandle> handles;
  for (int s = 0; s < kStableSets; ++s) {
    contents.push_back(MakeCircles(700 + s, 12 + s));
    handles.push_back(registry.Register(contents.back(), Metric::kL2));
    ASSERT_TRUE(handles.back().valid());
  }
  // Unpin half of them: still resolvable through retention, and every
  // resolve now refreshes their LRU position.
  for (int s = 0; s < kStableSets / 2; ++s) {
    ASSERT_TRUE(registry.Release(handles[s]));
  }

  constexpr int kReaders = 4;
  constexpr int kIters = 3000;
  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) {
      }
      for (int i = 0; i < kIters; ++i) {
        const int s = (t + i) % kStableSets;
        const auto set = registry.Resolve(handles[s]);
        // A stable set may only miss if the retention budget evicted it
        // (possible for the unpinned half while the writer churns).
        if (set != nullptr && !set->SameContent(contents[s], Metric::kL2)) {
          mismatches.fetch_add(1);
        }
        const CircleSetHandle by_hash =
            registry.FindByHash(handles[s].content_hash);
        if (by_hash.valid() &&
            by_hash.content_hash != handles[s].content_hash) {
          mismatches.fetch_add(1);
        }
        if ((i & 63) == 0) {
          (void)registry.size();
          (void)registry.unpinned_entries();
          (void)registry.resident_bytes();
        }
      }
    });
  }
  std::thread writer([&] {
    while (!start.load()) {
    }
    RegistrationScope scope(&registry, /*max_tracked=*/8);
    for (int i = 0; i < kIters / 4; ++i) {
      const CircleSetHandle churn =
          registry.Register(MakeCircles(9000 + i, 10), Metric::kL2);
      scope.Track(churn);
      const std::vector<CircleSetEdit> edits = {
          {CircleSetEdit::Kind::kReplace, 0, NnCircle{{0.5, 0.5}, 0.1, 0}}};
      CircleSetHandle derived;
      if (registry.ApplyDelta(churn, edits, std::nullopt, &derived).ok()) {
        scope.Track(derived);
      }
    }
  });
  start.store(true);
  for (std::thread& t : threads) t.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);

  // The pinned half must have survived every eviction sweep.
  for (int s = kStableSets / 2; s < kStableSets; ++s) {
    const auto set = registry.Resolve(handles[s]);
    ASSERT_NE(set, nullptr) << s;
    EXPECT_TRUE(set->SameContent(contents[s], Metric::kL2));
  }
}

}  // namespace
}  // namespace rnnhm
