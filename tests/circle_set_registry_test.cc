#include "query/circle_set_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

TEST(CircleSetSnapshotTest, HashMatchesFreeFunctionAndIsContentSensitive) {
  const auto circles = MakeCircles(1, 30);
  const auto set = CircleSetSnapshot::Make(circles, Metric::kL2);
  EXPECT_EQ(set->content_hash(), HashCircleSet(circles, Metric::kL2));
  EXPECT_NE(set->content_hash(), HashCircleSet(circles, Metric::kLInf));
  auto nudged = circles;
  nudged[7].radius += 1e-12;
  EXPECT_NE(set->content_hash(), HashCircleSet(nudged, Metric::kL2));
  EXPECT_TRUE(set->SameContent(circles, Metric::kL2));
  EXPECT_FALSE(set->SameContent(circles, Metric::kLInf));
  EXPECT_FALSE(set->SameContent(nudged, Metric::kL2));
}

TEST(CircleSetRegistryTest, RegisterDeduplicatesIdenticalContent) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(2, 40);
  const CircleSetHandle a = registry.Register(circles, Metric::kLInf);
  const CircleSetHandle b = registry.Register(circles, Metric::kLInf);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  // Deduplicated registrations resolve to the very same snapshot object.
  EXPECT_EQ(registry.Resolve(a).get(), registry.Resolve(b).get());
}

TEST(CircleSetRegistryTest, DistinctContentGetsDistinctHandles) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(3, 40), Metric::kLInf);
  const CircleSetHandle b =
      registry.Register(MakeCircles(4, 40), Metric::kLInf);
  // Same circles, different metric: different content.
  const CircleSetHandle c =
      registry.Register(MakeCircles(3, 40), Metric::kL2);
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_NE(a.content_hash, c.content_hash);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(CircleSetRegistryTest, ResolveRejectsForgedAndUnknownHandles) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(5, 20), Metric::kL1);
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_EQ(registry.Resolve(CircleSetHandle{}), nullptr);
  EXPECT_EQ(registry.Resolve(CircleSetHandle{a.id + 999, a.content_hash}),
            nullptr);
  // Right id, wrong hash: a stale or forged handle must not resolve.
  EXPECT_EQ(registry.Resolve(CircleSetHandle{a.id, a.content_hash ^ 1}),
            nullptr);
}

TEST(CircleSetRegistryTest, FindByHashLocatesRegisteredContent) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(6, 25);
  const CircleSetHandle a = registry.Register(circles, Metric::kL2);
  EXPECT_EQ(registry.FindByHash(a.content_hash), a);
  EXPECT_FALSE(registry.FindByHash(a.content_hash ^ 1).valid());
}

TEST(CircleSetRegistryTest, ReleaseIsRefCounted) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(7, 30);
  const CircleSetHandle a = registry.Register(circles, Metric::kLInf);
  const CircleSetHandle b = registry.Register(circles, Metric::kLInf);
  ASSERT_EQ(a, b);  // two registrations of one entry
  EXPECT_TRUE(registry.Release(a));
  EXPECT_EQ(registry.size(), 1u);  // one registration still holds it
  EXPECT_NE(registry.Resolve(a), nullptr);
  EXPECT_TRUE(registry.Release(a));
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Resolve(a), nullptr);
  EXPECT_FALSE(registry.Release(a));  // already gone
}

TEST(CircleSetRegistryTest, SnapshotsOutliveRelease) {
  CircleSetRegistry registry;
  const CircleSetHandle a =
      registry.Register(MakeCircles(8, 30), Metric::kLInf);
  const std::shared_ptr<const CircleSetSnapshot> pinned =
      registry.Resolve(a);
  ASSERT_NE(pinned, nullptr);
  EXPECT_TRUE(registry.Release(a));
  // The registry dropped its reference; ours keeps the data alive.
  EXPECT_EQ(pinned->circles().size(), 30u);
  EXPECT_EQ(pinned->content_hash(), a.content_hash);
}

TEST(CircleSetRegistryTest, ReRegisteringReleasedContentIssuesFreshId) {
  CircleSetRegistry registry;
  const auto circles = MakeCircles(9, 15);
  const CircleSetHandle a = registry.Register(circles, Metric::kL2);
  ASSERT_TRUE(registry.Release(a));
  const CircleSetHandle b = registry.Register(circles, Metric::kL2);
  EXPECT_NE(a.id, b.id);  // ids are never reused
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(registry.Resolve(a), nullptr);
  EXPECT_NE(registry.Resolve(b), nullptr);
}

// Parallel Register/Resolve/Release over a small pool of contents; run
// under ASan/TSan. Every thread re-registers each content it resolves, so
// entries stay live while in use, and the final counts must balance.
TEST(CircleSetRegistryTest, ConcurrentRegisterResolveReleaseIsSafe) {
  CircleSetRegistry registry;
  constexpr int kContents = 5;
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::vector<NnCircle>> contents;
  for (int c = 0; c < kContents; ++c) {
    contents.push_back(MakeCircles(100 + c, 20));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto& circles = contents[(t + i) % kContents];
        const CircleSetHandle handle =
            registry.Register(circles, Metric::kLInf);
        const auto set = registry.Resolve(handle);
        if (set == nullptr ||
            !set->SameContent(circles, Metric::kLInf)) {
          ++mismatches;
        }
        registry.Release(handle);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(registry.size(), 0u);  // every registration was released
}

}  // namespace
}  // namespace rnnhm
