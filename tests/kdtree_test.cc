#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"
#include "index/kdtree.h"

namespace rnnhm {
namespace {

NnResult BruteNearest(const std::vector<Point>& pts, const Point& q,
                      Metric metric, int32_t exclude) {
  NnResult best;
  best.distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pts.size(); ++i) {
    if (static_cast<int32_t>(i) == exclude) continue;
    const double d = Distance(q, pts[i], metric);
    if (d < best.distance ||
        (d == best.distance && static_cast<int32_t>(i) < best.index)) {
      best.distance = d;
      best.index = static_cast<int32_t>(i);
    }
  }
  if (best.index < 0) best.distance = 0.0;
  return best;
}

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Nearest({0, 0}, Metric::kL2).index, -1);
  EXPECT_TRUE(tree.KNearest({0, 0}, 3, Metric::kL2).empty());
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree({{1, 2}});
  const NnResult r = tree.Nearest({4, 6}, Metric::kL2);
  EXPECT_EQ(r.index, 0);
  EXPECT_DOUBLE_EQ(r.distance, 5.0);
  // Excluding the only point yields no result.
  EXPECT_EQ(tree.Nearest({4, 6}, Metric::kL2, 0).index, -1);
}

TEST(KdTreeTest, ExactHit) {
  KdTree tree({{0, 0}, {1, 1}, {2, 2}});
  const NnResult r = tree.Nearest({1, 1}, Metric::kL1);
  EXPECT_EQ(r.index, 1);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

struct KdTreeCase {
  Metric metric;
  size_t n;
  uint64_t seed;
};

class KdTreeProperty : public ::testing::TestWithParam<KdTreeCase> {};

TEST_P(KdTreeProperty, NearestMatchesBruteForce) {
  const KdTreeCase c = GetParam();
  Rng rng(c.seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < c.n; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  KdTree tree(pts);
  for (int q = 0; q < 200; ++q) {
    const Point query{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    const NnResult got = tree.Nearest(query, c.metric);
    const NnResult want = BruteNearest(pts, query, c.metric, -1);
    ASSERT_EQ(got.index, want.index) << "query " << query.x << "," << query.y;
    EXPECT_DOUBLE_EQ(got.distance, want.distance);
  }
}

TEST_P(KdTreeProperty, NearestWithExclusionMatchesBruteForce) {
  const KdTreeCase c = GetParam();
  Rng rng(c.seed + 1);
  std::vector<Point> pts;
  for (size_t i = 0; i < c.n; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  KdTree tree(pts);
  for (size_t i = 0; i < std::min<size_t>(c.n, 100); ++i) {
    const int32_t exclude = static_cast<int32_t>(i);
    const NnResult got = tree.Nearest(pts[i], c.metric, exclude);
    const NnResult want = BruteNearest(pts, pts[i], c.metric, exclude);
    ASSERT_EQ(got.index, want.index);
    EXPECT_DOUBLE_EQ(got.distance, want.distance);
    EXPECT_NE(got.index, exclude);
  }
}

TEST_P(KdTreeProperty, KNearestMatchesBruteForce) {
  const KdTreeCase c = GetParam();
  Rng rng(c.seed + 2);
  std::vector<Point> pts;
  for (size_t i = 0; i < c.n; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  KdTree tree(pts);
  for (int q = 0; q < 50; ++q) {
    const Point query{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const int k = 1 + static_cast<int>(rng.NextBounded(8));
    const auto got = tree.KNearest(query, k, c.metric);
    // Brute force: sort all by (distance, index).
    std::vector<NnResult> all;
    for (size_t i = 0; i < pts.size(); ++i) {
      all.push_back({static_cast<int32_t>(i),
                     Distance(query, pts[i], c.metric)});
    }
    std::sort(all.begin(), all.end(), [](const NnResult& a, const NnResult& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.index < b.index;
    });
    const size_t want_size = std::min<size_t>(k, pts.size());
    ASSERT_EQ(got.size(), want_size);
    for (size_t i = 0; i < want_size; ++i) {
      EXPECT_DOUBLE_EQ(got[i].distance, all[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeProperty,
    ::testing::Values(KdTreeCase{Metric::kLInf, 1, 10},
                      KdTreeCase{Metric::kLInf, 50, 11},
                      KdTreeCase{Metric::kLInf, 500, 12},
                      KdTreeCase{Metric::kL1, 2, 13},
                      KdTreeCase{Metric::kL1, 100, 14},
                      KdTreeCase{Metric::kL1, 1000, 15},
                      KdTreeCase{Metric::kL2, 3, 16},
                      KdTreeCase{Metric::kL2, 200, 17},
                      KdTreeCase{Metric::kL2, 2000, 18}),
    [](const ::testing::TestParamInfo<KdTreeCase>& param_info) {
      return MetricName(param_info.param.metric) + "_n" +
             std::to_string(param_info.param.n);
    });

TEST(KdTreeTest, DuplicatePointsTieBreakByIndex) {
  KdTree tree({{1, 1}, {1, 1}, {1, 1}});
  const NnResult r = tree.Nearest({1, 1}, Metric::kL2);
  EXPECT_EQ(r.index, 0);  // deterministic: smallest index wins ties
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  const NnResult r2 = tree.Nearest({1, 1}, Metric::kL2, 0);
  EXPECT_EQ(r2.index, 1);
}

TEST(KdTreeTest, CollinearDegenerateInput) {
  std::vector<Point> pts;
  for (int i = 0; i < 64; ++i) pts.push_back({static_cast<double>(i), 0.0});
  KdTree tree(pts);
  for (int q = 0; q < 64; ++q) {
    const Point query{q + 0.25, 3.0};
    const NnResult got = tree.Nearest(query, Metric::kL2);
    EXPECT_EQ(got.index, q);
  }
}

}  // namespace
}  // namespace rnnhm
