#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/rng.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

TEST(NnCircleBuilderTest, SingleFacility) {
  const std::vector<Point> clients{{0, 0}, {3, 4}};
  const std::vector<Point> facilities{{0, 0}};
  const auto circles = BuildNnCircles(clients, facilities, Metric::kL2);
  ASSERT_EQ(circles.size(), 2u);
  EXPECT_DOUBLE_EQ(circles[0].radius, 0.0);  // client on top of facility
  EXPECT_DOUBLE_EQ(circles[1].radius, 5.0);
  EXPECT_EQ(circles[0].client, 0);
  EXPECT_EQ(circles[1].client, 1);
}

class NnCircleProperty : public ::testing::TestWithParam<Metric> {};

TEST_P(NnCircleProperty, RadiusIsExactNnDistance) {
  const Metric metric = GetParam();
  Rng rng(31);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 300; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 40; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto circles = BuildNnCircles(clients, facilities, metric);
  ASSERT_EQ(circles.size(), clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    double want = std::numeric_limits<double>::infinity();
    for (const Point& f : facilities) {
      want = std::min(want, Distance(clients[i], f, metric));
    }
    EXPECT_DOUBLE_EQ(circles[i].radius, want);
    EXPECT_EQ(circles[i].center, clients[i]);
    EXPECT_EQ(circles[i].client, static_cast<int32_t>(i));
  }
}

TEST_P(NnCircleProperty, NoFacilityStrictlyInsideAnyCircle) {
  // Defining property of NN-circles: the open circle contains no facility.
  const Metric metric = GetParam();
  Rng rng(32);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 200; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 50; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto circles = BuildNnCircles(clients, facilities, metric);
  for (const NnCircle& c : circles) {
    for (const Point& f : facilities) {
      EXPECT_GE(Distance(c.center, f, metric), c.radius - 1e-12);
    }
  }
}

TEST_P(NnCircleProperty, MonochromaticExcludesSelf) {
  const Metric metric = GetParam();
  Rng rng(33);
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto circles = BuildMonochromaticNnCircles(points, metric);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_GT(circles[i].radius, 0.0);  // distinct random points
    double want = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      want = std::min(want, Distance(points[i], points[j], metric));
    }
    EXPECT_DOUBLE_EQ(circles[i].radius, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, NnCircleProperty,
                         ::testing::Values(Metric::kLInf, Metric::kL1,
                                           Metric::kL2),
                         [](const ::testing::TestParamInfo<Metric>& param_info) {
                           return MetricName(param_info.param);
                         });

TEST(NnCircleBuilderTest, RotateCirclesToLInfPreservesMembership) {
  // A point is in an L1 NN-circle iff its rotation is in the rotated
  // L-infinity circle.
  Rng rng(34);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 100; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 10; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto l1 = BuildNnCircles(clients, facilities, Metric::kL1);
  const auto rot = RotateCirclesToLInf(l1);
  ASSERT_EQ(rot.size(), l1.size());
  for (int q = 0; q < 500; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const Point pr = RotateToLInf(p);
    for (size_t i = 0; i < l1.size(); ++i) {
      // Tolerate boundary coincidences by testing strictly-inside points.
      const double d1 = DistanceL1(p, l1[i].center) - l1[i].radius;
      const double d2 = DistanceLInf(pr, rot[i].center) - rot[i].radius;
      if (std::fabs(d1) < 1e-9) continue;
      ASSERT_EQ(d1 < 0, d2 < 0);
    }
  }
}

}  // namespace
}  // namespace rnnhm
