// Tests of RunRegionColoring on arbitrary (non-square) rectangles — the
// general Region Coloring problem of Definition 2 and the substrate of the
// parallel slab decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/crest.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

std::vector<int32_t> OracleSet(const Point& p,
                               const std::vector<ColoredRect>& rects) {
  std::vector<int32_t> out;
  for (const ColoredRect& r : rects) {
    if (r.box.ContainsClosed(p)) out.push_back(r.client);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RegionColoringTest, SingleRectangle) {
  const std::vector<ColoredRect> rects{{Rect{{0, 0}, {3, 1}}, 5}};
  SizeInfluence measure;
  CollectingSink sink;
  const CrestStats stats = RunRegionColoring(rects, measure, &sink);
  ASSERT_EQ(sink.labels().size(), 1u);
  EXPECT_EQ(sink.labels()[0].rnn, (std::vector<int32_t>{5}));
  EXPECT_EQ(stats.num_circles, 1u);
}

TEST(RegionColoringTest, DegenerateRectanglesSkipped) {
  const std::vector<ColoredRect> rects{
      {Rect{{0, 0}, {0, 1}}, 0},   // zero width
      {Rect{{0, 0}, {1, 0}}, 1},   // zero height
      {Rect{{2, 2}, {1, 1}}, 2},   // inverted
      {Rect{{0, 0}, {1, 1}}, 3}};  // the only real one
  SizeInfluence measure;
  DistinctSetSink sink;
  const CrestStats stats = RunRegionColoring(rects, measure, &sink);
  EXPECT_EQ(stats.num_skipped_circles, 3u);
  EXPECT_EQ(stats.num_circles, 1u);
  ASSERT_EQ(sink.sets().size(), 1u);
  EXPECT_TRUE(sink.sets().count({3}));
}

TEST(RegionColoringTest, ThinWideMixtures) {
  // Extreme aspect ratios: a thin horizontal bar crossing a thin vertical
  // bar produces the classic 5-region plus cross layout.
  const std::vector<ColoredRect> rects{
      {Rect{{0, 0.45}, {1, 0.55}}, 0},   // horizontal bar
      {Rect{{0.45, 0}, {0.55, 1}}, 1}};  // vertical bar
  SizeInfluence measure;
  DistinctSetSink sink;
  RunRegionColoring(rects, measure, &sink);
  EXPECT_TRUE(sink.sets().count({0}));
  EXPECT_TRUE(sink.sets().count({1}));
  EXPECT_TRUE(sink.sets().count({0, 1}));
}

class RegionColoringProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegionColoringProperty, LabelsMatchOracleAtRectCenters) {
  Rng rng(4000 + GetParam());
  std::vector<ColoredRect> rects;
  for (int i = 0; i < GetParam(); ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    // Deliberately skewed aspect ratios.
    rects.push_back(ColoredRect{
        Rect{{x, y}, {x + rng.Uniform(0.001, 0.5), y + rng.Uniform(0.001, 0.05)}},
        i});
  }
  SizeInfluence measure;
  CollectingSink sink;
  RunRegionColoring(rects, measure, &sink);
  int checked = 0;
  for (const auto& label : sink.labels()) {
    const Rect& r = label.subregion;
    if (!(r.lo.x < r.hi.x && r.lo.y < r.hi.y)) continue;
    ASSERT_EQ(label.rnn, OracleSet(r.Center(), rects));
    ++checked;
  }
  EXPECT_GT(checked, GetParam() / 2);
}

TEST_P(RegionColoringProperty, DistinctSetsCoverSampledPoints) {
  Rng rng(4100 + GetParam());
  std::vector<ColoredRect> rects;
  for (int i = 0; i < GetParam(); ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    rects.push_back(ColoredRect{
        Rect{{x, y}, {x + rng.Uniform(0.01, 0.4), y + rng.Uniform(0.01, 0.4)}},
        i});
  }
  SizeInfluence measure;
  DistinctSetSink sink;
  RunRegionColoring(rects, measure, &sink);
  for (int q = 0; q < 3000; ++q) {
    const Point p{rng.Uniform(0, 1.2), rng.Uniform(0, 1.2)};
    const auto want = OracleSet(p, rects);
    if (!want.empty()) {
      ASSERT_TRUE(sink.sets().count(want));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegionColoringProperty,
                         ::testing::Values(5, 40, 200),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace rnnhm
