#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/base_set.h"

namespace rnnhm {
namespace {

std::vector<int32_t> Sorted(const BaseSet& set) {
  std::vector<int32_t> v;
  set.CopyTo(v);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(BaseSetTest, StartsEmpty) {
  BaseSet set(10);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(set.Contains(i));
}

TEST(BaseSetTest, AddRemoveContains) {
  BaseSet set(5);
  set.Add(3);
  set.Add(1);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_FALSE(set.Contains(0));
  EXPECT_EQ(set.size(), 2);
  set.Remove(3);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(Sorted(set), (std::vector<int32_t>{1}));
}

TEST(BaseSetTest, RemoveHeadMiddleTail) {
  BaseSet set(8);
  for (int i = 0; i < 5; ++i) set.Add(i);
  set.Remove(4);  // list head (most recently added)
  set.Remove(2);  // middle
  set.Remove(0);  // tail
  EXPECT_EQ(Sorted(set), (std::vector<int32_t>{1, 3}));
}

TEST(BaseSetTest, ClearAndReuse) {
  BaseSet set(6);
  for (int i = 0; i < 6; ++i) set.Add(i);
  set.Clear();
  EXPECT_TRUE(set.empty());
  for (int i = 0; i < 6; ++i) EXPECT_FALSE(set.Contains(i));
  set.Add(2);
  EXPECT_EQ(Sorted(set), (std::vector<int32_t>{2}));
}

TEST(BaseSetTest, AssignReplacesContents) {
  BaseSet set(10);
  set.Add(9);
  const std::vector<int32_t> ids{1, 4, 7};
  set.Assign(ids);
  EXPECT_EQ(Sorted(set), ids);
  EXPECT_FALSE(set.Contains(9));
}

TEST(BaseSetTest, CopyToPreservesAllElements) {
  BaseSet set(100);
  std::set<int32_t> want;
  Rng rng(50);
  for (int i = 0; i < 60; ++i) {
    const int32_t id = static_cast<int32_t>(rng.NextBounded(100));
    if (!set.Contains(id)) {
      set.Add(id);
      want.insert(id);
    }
  }
  const std::vector<int32_t> got = Sorted(set);
  EXPECT_EQ(got, std::vector<int32_t>(want.begin(), want.end()));
}

TEST(BaseSetTest, RandomizedAgainstStdSet) {
  BaseSet set(256);
  std::set<int32_t> reference;
  Rng rng(51);
  for (int step = 0; step < 50000; ++step) {
    const int32_t id = static_cast<int32_t>(rng.NextBounded(256));
    if (reference.count(id)) {
      set.Remove(id);
      reference.erase(id);
    } else {
      set.Add(id);
      reference.insert(id);
    }
    ASSERT_EQ(set.size(), static_cast<int32_t>(reference.size()));
    ASSERT_EQ(set.Contains(id), reference.count(id) > 0);
  }
  EXPECT_EQ(Sorted(set),
            std::vector<int32_t>(reference.begin(), reference.end()));
}

}  // namespace
}  // namespace rnnhm
