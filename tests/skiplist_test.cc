#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "index/skiplist.h"

namespace rnnhm {
namespace {

using List = SkipList<double, int>;

std::vector<std::pair<double, int>> Contents(const List& list) {
  std::vector<std::pair<double, int>> out;
  for (auto* n = list.First(); n != nullptr; n = List::Next(n)) {
    out.push_back({n->key, n->value});
  }
  return out;
}

TEST(SkipListTest, EmptyList) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.First(), nullptr);
  EXPECT_EQ(list.Last(), nullptr);
  EXPECT_EQ(list.LowerBound(0.0), nullptr);
  EXPECT_EQ(list.UpperBound(0.0), nullptr);
}

TEST(SkipListTest, InsertKeepsOrder) {
  List list;
  list.Insert(3.0, 3);
  list.Insert(1.0, 1);
  list.Insert(2.0, 2);
  ASSERT_EQ(list.size(), 3u);
  const auto c = Contents(list);
  EXPECT_EQ(c, (std::vector<std::pair<double, int>>{{1, 1}, {2, 2}, {3, 3}}));
  EXPECT_EQ(list.First()->value, 1);
  EXPECT_EQ(list.Last()->value, 3);
}

TEST(SkipListTest, EqualKeysInsertAfterExisting) {
  List list;
  list.Insert(1.0, 10);
  list.Insert(1.0, 11);
  list.Insert(1.0, 12);
  const auto c = Contents(list);
  EXPECT_EQ(c,
            (std::vector<std::pair<double, int>>{{1, 10}, {1, 11}, {1, 12}}));
}

TEST(SkipListTest, EraseByHandle) {
  List list;
  auto* a = list.Insert(1.0, 1);
  auto* b = list.Insert(2.0, 2);
  auto* c = list.Insert(3.0, 3);
  list.Erase(b);
  EXPECT_EQ(Contents(list),
            (std::vector<std::pair<double, int>>{{1, 1}, {3, 3}}));
  EXPECT_EQ(List::Next(a), c);
  EXPECT_EQ(list.Prev(c), a);
  list.Erase(a);
  EXPECT_EQ(list.First(), c);
  EXPECT_EQ(list.Prev(c), nullptr);
  list.Erase(c);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Last(), nullptr);
}

TEST(SkipListTest, EraseAmongEqualKeysRemovesExactNode) {
  List list;
  auto* a = list.Insert(1.0, 10);
  auto* b = list.Insert(1.0, 11);
  auto* c = list.Insert(1.0, 12);
  list.Erase(b);
  EXPECT_EQ(Contents(list),
            (std::vector<std::pair<double, int>>{{1, 10}, {1, 12}}));
  EXPECT_EQ(List::Next(a), c);
  list.Erase(a);
  list.Erase(c);
  EXPECT_TRUE(list.empty());
}

TEST(SkipListTest, LowerAndUpperBound) {
  List list;
  for (const double k : {1.0, 2.0, 2.0, 4.0}) {
    list.Insert(k, static_cast<int>(k * 10));
  }
  EXPECT_EQ(list.LowerBound(0.0)->key, 1.0);
  EXPECT_EQ(list.LowerBound(2.0)->key, 2.0);
  EXPECT_EQ(list.UpperBound(2.0)->key, 4.0);
  EXPECT_EQ(list.LowerBound(3.0)->key, 4.0);
  EXPECT_EQ(list.LowerBound(5.0), nullptr);
  EXPECT_EQ(list.UpperBound(4.0), nullptr);
  // LowerBound of an equal-key run returns the first among equals.
  auto* lb = list.LowerBound(2.0);
  EXPECT_EQ(lb->value, 20);
}

TEST(SkipListTest, PrevWalksBackward) {
  List list;
  for (int i = 0; i < 10; ++i) list.Insert(i, i);
  auto* n = list.Last();
  for (int i = 9; i >= 0; --i) {
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);
    n = list.Prev(n);
  }
  EXPECT_EQ(n, nullptr);
}

// Property: a long random mixed workload agrees with std::multimap.
TEST(SkipListTest, RandomizedAgainstMultimap) {
  Rng rng(42);
  List list;
  std::multimap<double, int> reference;
  std::vector<List::Node*> handles;
  std::vector<std::multimap<double, int>::iterator> ref_iters;
  for (int step = 0; step < 20000; ++step) {
    const bool insert = handles.empty() || rng.NextDouble() < 0.6;
    if (insert) {
      const double key = rng.Uniform(0, 100);
      const int value = step;
      handles.push_back(list.Insert(key, value));
      ref_iters.push_back(reference.emplace(key, value));
    } else {
      const size_t i = rng.NextBounded(handles.size());
      list.Erase(handles[i]);
      reference.erase(ref_iters[i]);
      handles.erase(handles.begin() + i);
      ref_iters.erase(ref_iters.begin() + i);
    }
    ASSERT_EQ(list.size(), reference.size());
  }
  // Key multisets agree (values may interleave among equal keys, which the
  // line status tolerates).
  std::multiset<double> got, want;
  for (auto* n = list.First(); n != nullptr; n = List::Next(n)) {
    got.insert(n->key);
  }
  for (const auto& [k, v] : reference) want.insert(k);
  EXPECT_EQ(got, want);
  // Keys must be non-decreasing along the list.
  for (auto* n = list.First(); n != nullptr; n = List::Next(n)) {
    auto* nxt = List::Next(n);
    if (nxt != nullptr) {
      EXPECT_LE(n->key, nxt->key);
    }
  }
  // LowerBound agrees with the reference on random probes.
  for (int probe = 0; probe < 1000; ++probe) {
    const double k = rng.Uniform(-5, 105);
    auto* lb = list.LowerBound(k);
    auto ref_lb = reference.lower_bound(k);
    if (ref_lb == reference.end()) {
      EXPECT_EQ(lb, nullptr);
    } else {
      ASSERT_NE(lb, nullptr);
      EXPECT_EQ(lb->key, ref_lb->first);
    }
  }
}

TEST(SkipListTest, DeterministicAcrossRuns) {
  auto build = [] {
    List list(123);
    Rng rng(7);
    std::vector<List::Node*> handles;
    for (int i = 0; i < 500; ++i) {
      handles.push_back(list.Insert(rng.Uniform(0, 10), i));
      if (i % 3 == 0) {
        const size_t victim = rng.NextBounded(handles.size());
        list.Erase(handles[victim]);
        handles.erase(handles.begin() + victim);
      }
    }
    return Contents(list);
  };
  EXPECT_EQ(build(), build());
}

TEST(SkipListTest, LargeSequentialInsertStaysLogarithmic) {
  // Smoke check that tower heights are sane: 100k sequential inserts and
  // full scan complete quickly and in order.
  List list;
  for (int i = 0; i < 100000; ++i) list.Insert(static_cast<double>(i), i);
  EXPECT_EQ(list.size(), 100000u);
  int expected = 0;
  for (auto* n = list.First(); n != nullptr; n = List::Next(n)) {
    ASSERT_EQ(n->value, expected++);
  }
  EXPECT_EQ(expected, 100000);
}

}  // namespace
}  // namespace rnnhm
