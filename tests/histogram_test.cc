#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/crest.h"
#include "heatmap/histogram.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

TEST(AreaHistogramTest, AccumulatesExactAreas) {
  AreaHistogramSink sink;
  sink.OnSpan(0, 2, 0, 1, 1.0);   // area 2 at influence 1
  sink.OnSpan(0, 1, 1, 3, 1.0);   // area 2 at influence 1
  sink.OnSpan(5, 6, 0, 4, 3.0);   // area 4 at influence 3
  sink.OnSpan(9, 9, 0, 4, 9.0);   // zero width: ignored
  EXPECT_DOUBLE_EQ(sink.TotalArea(), 8.0);
  EXPECT_DOUBLE_EQ(sink.area_by_influence().at(1.0), 4.0);
  EXPECT_DOUBLE_EQ(sink.area_by_influence().at(3.0), 4.0);
  EXPECT_DOUBLE_EQ(sink.AreaAtLeast(2.0), 4.0);
  EXPECT_DOUBLE_EQ(sink.AreaAtLeast(1.0), 8.0);
  EXPECT_DOUBLE_EQ(sink.AreaAtLeast(5.0), 0.0);
}

TEST(AreaHistogramTest, QuantileWalksFromTheTop) {
  AreaHistogramSink sink;
  sink.OnSpan(0, 1, 0, 1, 1.0);   // area 1
  sink.OnSpan(0, 1, 1, 2, 2.0);   // area 1
  sink.OnSpan(0, 2, 2, 3, 4.0);   // area 2
  // Top 25% of 4.0 total = 1.0 area -> influence 4 covers 2 >= 1.
  EXPECT_DOUBLE_EQ(sink.QuantileInfluence(0.25), 4.0);
  // Top 80% = 3.2 area -> need down to influence 1.
  EXPECT_DOUBLE_EQ(sink.QuantileInfluence(0.80), 1.0);
  AreaHistogramSink empty;
  EXPECT_DOUBLE_EQ(empty.QuantileInfluence(0.5), 0.0);
}

TEST(AreaHistogramTest, SingleSquareExactArea) {
  const std::vector<NnCircle> circles{{{0.5, 0.5}, 0.25, 0}};
  SizeInfluence measure;
  AreaHistogramSink histogram;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &histogram;
  RunCrest(circles, measure, &counter, options);
  // One span: the square itself, side 0.5.
  EXPECT_DOUBLE_EQ(histogram.TotalArea(), 0.25);
  EXPECT_DOUBLE_EQ(histogram.area_by_influence().at(1.0), 0.25);
}

TEST(AreaHistogramTest, OverlappingSquaresDecompose) {
  // Two 0.4-side squares overlapping in a 0.2 x 0.4 band.
  const std::vector<NnCircle> circles{{{0.4, 0.5}, 0.2, 0},
                                      {{0.6, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  AreaHistogramSink histogram;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &histogram;
  RunCrest(circles, measure, &counter, options);
  EXPECT_NEAR(histogram.area_by_influence().at(2.0), 0.2 * 0.4, 1e-12);
  EXPECT_NEAR(histogram.area_by_influence().at(1.0), 2 * 0.2 * 0.4, 1e-12);
  EXPECT_NEAR(histogram.TotalArea(), 0.6 * 0.4, 1e-12);
}

TEST(AreaHistogramTest, MatchesRasterApproximationOnRandomInput) {
  Rng rng(3100);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 60; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.02, 0.15), i});
  }
  SizeInfluence measure;
  AreaHistogramSink histogram;
  CountingSink counter;
  CrestOptions options;
  options.strip_sink = &histogram;
  RunCrest(circles, measure, &counter, options);
  // Monte-Carlo estimate of the area with influence >= 2 over the same
  // bounding box must agree within sampling error.
  Rect box = EmptyRect();
  for (const NnCircle& c : circles) box = box.Union(c.Bounds());
  int hits = 0;
  const int samples = 200000;
  for (int s = 0; s < samples; ++s) {
    const Point p{rng.Uniform(box.lo.x, box.hi.x),
                  rng.Uniform(box.lo.y, box.hi.y)};
    int count = 0;
    for (const NnCircle& c : circles) count += c.Contains(p, Metric::kLInf);
    hits += count >= 2;
  }
  const double monte_carlo = box.Area() * hits / samples;
  EXPECT_NEAR(histogram.AreaAtLeast(2.0), monte_carlo,
              monte_carlo * 0.08 + 0.001);
}

}  // namespace
}  // namespace rnnhm
