#include "heatmap/incremental.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/dirty_interval.h"
#include "core/label_sink.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "query/heatmap_session.h"

namespace rnnhm {
namespace {

TEST(DirtyIntervalSetTest, MergesOverlappingAndTouchingIntervals) {
  DirtyIntervalSet set;
  EXPECT_TRUE(set.empty());
  set.Add(0.4, 0.6);
  set.Add(0.1, 0.2);
  set.Add(0.55, 0.7);  // overlaps [0.4, 0.6]
  set.Add(0.2, 0.25);  // touches [0.1, 0.2]
  const auto& merged = set.Merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (DirtyInterval{0.1, 0.25}));
  EXPECT_EQ(merged[1], (DirtyInterval{0.4, 0.7}));
}

TEST(DirtyIntervalSetTest, PointIntervalsAndClearWork) {
  DirtyIntervalSet set;
  set.Add(0.5, 0.5);  // zero-radius circle footprint
  EXPECT_FALSE(set.empty());
  ASSERT_EQ(set.Merged().size(), 1u);
  EXPECT_EQ(set.Merged()[0], (DirtyInterval{0.5, 0.5}));
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.Merged().empty());
}

TEST(DirtyIntervalSetTest, RepeatedLocalEditsStayCompact) {
  DirtyIntervalSet set;
  for (int i = 0; i < 1000; ++i) {
    set.Add(0.3, 0.4);  // same neighborhood over and over
  }
  EXPECT_EQ(set.num_pending(), 1u);  // absorbed, not accumulated
}

TEST(DirtyRegionSetTest, MergesByXOverlapAndUnionsY) {
  DirtyRegionSet set;
  EXPECT_TRUE(set.empty());
  set.Add(0.4, 0.6, 0.1, 0.2);
  set.Add(0.1, 0.2, 0.5, 0.6);
  set.Add(0.55, 0.7, 0.8, 0.9);  // x overlaps [0.4, 0.6]; y disjoint
  set.Add(0.2, 0.25, 0.4, 0.7);  // x touches [0.1, 0.2]
  const auto& merged = set.Merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (DirtyRect{{0.1, 0.25}, {0.4, 0.7}}));
  EXPECT_EQ(merged[1], (DirtyRect{{0.4, 0.7}, {0.1, 0.9}}));
}

TEST(DirtyRegionSetTest, PointRectsAndClearWork) {
  DirtyRegionSet set;
  set.Add(0.5, 0.5, 0.5, 0.5);  // zero-radius circle footprint
  EXPECT_FALSE(set.empty());
  ASSERT_EQ(set.Merged().size(), 1u);
  EXPECT_EQ(set.Merged()[0], (DirtyRect{{0.5, 0.5}, {0.5, 0.5}}));
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.Merged().empty());
}

TEST(DirtyRegionSetTest, RepeatedLocalEditsStayCompact) {
  DirtyRegionSet set;
  for (int i = 0; i < 1000; ++i) {
    set.Add(0.3, 0.4, 0.2, 0.5);  // same neighborhood over and over
  }
  EXPECT_EQ(set.num_pending(), 1u);  // absorbed, not accumulated
}

TEST(DirtyRegionSetTest, AddRectTakesCircleBounds) {
  DirtyRegionSet set;
  set.AddRect(NnCircle{{0.5, 0.4}, 0.1, 0}.Bounds());
  ASSERT_EQ(set.Merged().size(), 1u);
  const DirtyRect& rect = set.Merged()[0];
  EXPECT_NEAR(rect.x.lo, 0.4, 1e-12);
  EXPECT_NEAR(rect.x.hi, 0.6, 1e-12);
  EXPECT_NEAR(rect.y.lo, 0.3, 1e-12);
  EXPECT_NEAR(rect.y.hi, 0.5, 1e-12);
}

std::vector<NnCircle> RandomCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

// RunCrestSlab must label the slab's regions exactly like the regions a
// full sweep labels there (modulo clipping of representative boxes).
TEST(RunCrestSlabTest, SlabLabelsMatchFullSweepWithinTheSlab) {
  const auto circles = RandomCircles(90, 60);
  SizeInfluence measure;
  for (const Metric metric : {Metric::kLInf, Metric::kL2}) {
    DistinctSetSink full;
    std::vector<RegionLabelSink*> full_sinks{&full};
    RunCrestParallelMetric(metric, circles, measure, full_sinks);
    DistinctSetSink slab;
    RunCrestSlabMetric(metric, circles, measure, &slab, 0.3, 0.7);
    auto slab_sets = slab.sets();
    slab_sets.erase(std::vector<int32_t>{});
    auto full_sets = full.sets();
    full_sets.erase(std::vector<int32_t>{});
    EXPECT_FALSE(slab_sets.empty());
    for (const auto& [set, influence] : slab_sets) {
      const auto it = full_sets.find(set);
      ASSERT_NE(it, full_sets.end()) << MetricName(metric);
      EXPECT_EQ(it->second, influence);
    }
  }
}

// Painting only the dirty slab of a grid whose other columns hold the
// old raster must reproduce the new full raster bit for bit.
TEST(RecomputeDirtyColumnsTest, SpliceEqualsFullRebuild) {
  SizeInfluence measure;
  const Rect domain{{-0.05, -0.05}, {1.05, 1.05}};
  constexpr int kRes = 40;
  for (const Metric metric : {Metric::kLInf, Metric::kL2}) {
    auto circles = RandomCircles(91, 50);
    HeatmapGrid grid =
        metric == Metric::kL2
            ? BuildHeatmapL2(circles, measure, domain, kRes, kRes)
            : BuildHeatmapLInf(circles, measure, domain, kRes, kRes);

    // Perturb one circle; its old+new footprints bound the change.
    DirtyIntervalSet dirty;
    const Rect old_box = circles[17].Bounds();
    dirty.Add(old_box.lo.x, old_box.hi.x);
    circles[17].center = {0.31, 0.62};
    circles[17].radius = 0.17;
    const Rect new_box = circles[17].Bounds();
    dirty.Add(new_box.lo.x, new_box.hi.x);

    const IncrementalRasterStats stats =
        RecomputeDirtyColumns(&grid, metric, circles, measure, dirty);
    EXPECT_GT(stats.dirty_columns, 0);
    EXPECT_LT(stats.dirty_columns, kRes);  // strictly partial recompute
    EXPECT_EQ(stats.total_columns, kRes);

    const HeatmapGrid reference =
        metric == Metric::kL2
            ? BuildHeatmapL2(circles, measure, domain, kRes, kRes)
            : BuildHeatmapLInf(circles, measure, domain, kRes, kRes);
    EXPECT_EQ(grid.values(), reference.values()) << MetricName(metric);
  }
}

// The 2D dirty-rect splice: restricting reset + repaint to the dirty row
// window must still reproduce the new full raster bit for bit, while
// touching only the dirty area's pixels.
TEST(RecomputeDirtyColumnsTest, DirtyRectSpliceIsBitIdenticalAndAreaBound) {
  SizeInfluence measure;
  const Rect domain{{-0.05, -0.05}, {1.05, 1.05}};
  constexpr int kRes = 40;
  for (const Metric metric : {Metric::kLInf, Metric::kL2}) {
    auto circles = RandomCircles(96, 50);
    HeatmapGrid grid =
        metric == Metric::kL2
            ? BuildHeatmapL2(circles, measure, domain, kRes, kRes)
            : BuildHeatmapLInf(circles, measure, domain, kRes, kRes);

    // Perturb one circle; its old+new footprint boxes bound the change in
    // both axes.
    DirtyRegionSet dirty;
    dirty.AddRect(circles[23].Bounds());
    circles[23].center = {0.62, 0.33};
    circles[23].radius = 0.09;
    dirty.AddRect(circles[23].Bounds());

    const IncrementalRasterStats stats =
        RecomputeDirtyColumns(&grid, metric, circles, measure, dirty);
    EXPECT_GT(stats.dirty_columns, 0);
    EXPECT_LT(stats.dirty_columns, kRes);
    EXPECT_EQ(stats.total_rows, kRes);
    // The row window clipped the recompute: strictly fewer pixels than
    // full-height columns.
    EXPECT_GT(stats.dirty_pixels, 0);
    EXPECT_LT(stats.dirty_pixels,
              static_cast<int64_t>(stats.dirty_columns) * kRes);

    const HeatmapGrid reference =
        metric == Metric::kL2
            ? BuildHeatmapL2(circles, measure, domain, kRes, kRes)
            : BuildHeatmapLInf(circles, measure, domain, kRes, kRes);
    EXPECT_EQ(grid.values(), reference.values()) << MetricName(metric);
  }
}

// A rect entirely above/below the domain is skipped even when its
// x-interval crosses the grid.
TEST(RecomputeDirtyColumnsTest, OffScreenDirtyRowsAreSkipped) {
  SizeInfluence measure;
  const auto circles = RandomCircles(97, 30);
  const Rect domain{{0, 0}, {1, 1}};
  HeatmapGrid grid = BuildHeatmapLInf(circles, measure, domain, 16, 16);
  const std::vector<double> before = grid.values();
  // x-disjoint rects (overlapping ones would merge and y-union on-screen).
  DirtyRegionSet dirty;
  dirty.Add(0.1, 0.4, 5.0, 6.0);      // above the whole domain
  dirty.Add(0.6, 0.9, -1e13, -1e12);  // row ordinals beyond int range
  const IncrementalRasterStats stats =
      RecomputeDirtyColumns(&grid, Metric::kLInf, circles, measure, dirty);
  EXPECT_EQ(stats.dirty_slabs, 0);
  EXPECT_EQ(stats.dirty_pixels, 0);
  EXPECT_EQ(grid.values(), before);
}

TEST(RecomputeDirtyColumnsTest, EmptyDirtySetLeavesTheGridUntouched) {
  SizeInfluence measure;
  const auto circles = RandomCircles(92, 30);
  const Rect domain{{0, 0}, {1, 1}};
  HeatmapGrid grid = BuildHeatmapLInf(circles, measure, domain, 16, 16);
  const std::vector<double> before = grid.values();
  DirtyIntervalSet dirty;
  const IncrementalRasterStats stats =
      RecomputeDirtyColumns(&grid, Metric::kLInf, circles, measure, dirty);
  EXPECT_EQ(stats.dirty_slabs, 0);
  EXPECT_EQ(grid.values(), before);
}

TEST(RecomputeDirtyColumnsTest, OffScreenDirtyIntervalIsSkipped) {
  SizeInfluence measure;
  const auto circles = RandomCircles(93, 30);
  const Rect domain{{0, 0}, {1, 1}};
  HeatmapGrid grid = BuildHeatmapLInf(circles, measure, domain, 16, 16);
  const std::vector<double> before = grid.values();
  DirtyIntervalSet dirty;
  dirty.Add(5.0, 6.0);      // right of the whole domain
  dirty.Add(1e12, 1e13);    // column ordinals far beyond int range
  dirty.Add(-1e13, -1e12);  // and far left of it
  const IncrementalRasterStats stats =
      RecomputeDirtyColumns(&grid, Metric::kLInf, circles, measure, dirty);
  EXPECT_EQ(stats.dirty_slabs, 0);
  EXPECT_EQ(stats.dirty_columns, 0);
  EXPECT_EQ(grid.values(), before);
}

// --- Session-level tracking ----------------------------------------------

TEST(SessionIncrementalTest, EditsAccumulateDirtyRects) {
  HeatmapSession session({{0.2, 0.5}, {0.8, 0.5}}, {{0.5, 0.5}},
                         Metric::kL2);
  EXPECT_TRUE(session.dirty_regions().empty());  // fresh session
  session.MoveClient(0, {0.25, 0.5});
  EXPECT_FALSE(session.dirty_regions().empty());
  // Old circle [0.2 +- 0.3] and new circle [0.25 +- 0.25] merge into one
  // rect whose y-extent is the union of both footprints.
  const auto& merged = session.dirty_regions().Merged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(merged[0].x.lo, -0.1, 1e-12);
  EXPECT_NEAR(merged[0].x.hi, 0.5, 1e-12);
  EXPECT_NEAR(merged[0].y.lo, 0.2, 1e-12);
  EXPECT_NEAR(merged[0].y.hi, 0.8, 1e-12);
}

TEST(SessionIncrementalTest, FirstCallIsFullThenSplices) {
  Rng rng(94);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 80; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 8; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};
  HeatmapSession session(clients, facilities, Metric::kLInf);

  IncrementalRebuildStats stats;
  session.RasterIncremental(measure, domain, 32, 32, &stats);
  EXPECT_TRUE(stats.full_rebuild);

  session.MoveClient(3, {0.4, 0.4});
  session.RasterIncremental(measure, domain, 32, 32, &stats);
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_GT(stats.raster.dirty_columns, 0);
  // A local edit's dirty rect is y-clipped too: the splice touched fewer
  // pixels than full-height columns would.
  EXPECT_LT(stats.raster.dirty_pixels,
            static_cast<int64_t>(stats.raster.dirty_columns) * 32);
  EXPECT_TRUE(session.dirty_regions().empty());  // consumed

  // No edits since: nothing to recompute.
  session.RasterIncremental(measure, domain, 32, 32, &stats);
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(stats.raster.dirty_columns, 0);
}

TEST(SessionIncrementalTest, ShapeMeasureOrInvalidateForcesFullRebuild) {
  Rng rng(95);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 40; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 5; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};
  HeatmapSession session(clients, facilities, Metric::kL2);
  IncrementalRebuildStats stats;
  session.RasterIncremental(measure, domain, 16, 16, &stats);
  ASSERT_TRUE(stats.full_rebuild);

  session.RasterIncremental(measure, domain, 24, 24, &stats);
  EXPECT_TRUE(stats.full_rebuild) << "resolution change";

  const Rect wider{{-0.5, 0}, {1.5, 1}};
  session.RasterIncremental(measure, wider, 24, 24, &stats);
  EXPECT_TRUE(stats.full_rebuild) << "domain change";

  SizeInfluence other_measure;
  session.RasterIncremental(other_measure, wider, 24, 24, &stats);
  EXPECT_TRUE(stats.full_rebuild) << "measure identity change";

  session.InvalidateRaster();
  session.RasterIncremental(other_measure, wider, 24, 24, &stats);
  EXPECT_TRUE(stats.full_rebuild) << "explicit invalidation";

  session.RasterIncremental(other_measure, wider, 24, 24, &stats);
  EXPECT_FALSE(stats.full_rebuild) << "steady state splices again";
}

TEST(SessionIncrementalTest, L1SessionsAlwaysRebuildFully) {
  HeatmapSession session({{0.3, 0.3}, {0.7, 0.7}}, {{0.5, 0.5}},
                         Metric::kL1);
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};
  IncrementalRebuildStats stats;
  session.RasterIncremental(measure, domain, 16, 16, &stats);
  EXPECT_TRUE(stats.full_rebuild);
  session.MoveClient(0, {0.4, 0.4});
  const HeatmapGrid& grid =
      session.RasterIncremental(measure, domain, 16, 16, &stats);
  EXPECT_TRUE(stats.full_rebuild);
  const HeatmapGrid reference = BuildHeatmapL1Parallel(
      session.circles(), measure, domain, 16, 16, /*num_slabs=*/1);
  EXPECT_EQ(grid.values(), reference.values());
}

}  // namespace
}  // namespace rnnhm
