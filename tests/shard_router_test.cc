// Shard-router differential tests: a forked 2-shard fleet behind the
// routing front must serve responses bit-identical to a direct
// HeatmapEngine::Execute, keep hash affinity (same set -> same shard, so
// inline-once registration works across processes), preserve per-client
// submission order, and merge stats across the fleet.
//
// Every harness forks its fleet FIRST, while the test process is still
// single-threaded — the router thread and any reference engines come
// after (fork must not carry sibling threads' lock state into workers).
#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "query/wire.h"
#include "serve/options.h"
#include "serve/shard_router.h"
#include "serve/transport.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

const Rect kDomain{{-0.1, -0.1}, {1.1, 1.1}};

// Fleet + router front on a Unix socket, router loop on its own thread.
class RouterHarness {
 public:
  ~RouterHarness() {
    if (router_ != nullptr && thread_.joinable()) Stop();
  }

  /// tile_rows > 0 switches the router into by-tile mode with that grid.
  Status Start(int num_shards, int worker_slabs, int tile_rows = 0,
               int tile_cols = 0) {
    options_.transport = TransportKind::kUnix;
    options_.num_shards = num_shards;
    options_.threads = 1;
    options_.slabs = worker_slabs;
    options_.idle_timeout_ms = 0;
    options_.drain_timeout_ms = 2000;
    if (tile_rows > 0) {
      options_.route_by_tile = true;
      options_.tile_rows = tile_rows;
      options_.tile_cols = tile_cols;
    }
    options_.socket_dir = "/tmp/rnnhm-router-test-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(++harness_counter_);
    // Fork the workers before this process grows any threads.
    if (const Status status = ShardFleet::Spawn(options_, &fleet_);
        !status.ok()) {
      return status;
    }
    front_path_ = options_.socket_dir + "/front.sock";
    Listener front;
    if (const Status status = Listener::ListenUnix(front_path_, &front);
        !status.ok()) {
      return status;
    }
    router_ = std::make_unique<ShardRouter>(std::move(front),
                                            fleet_.socket_paths(), options_);
    thread_ = std::thread([this] { result_ = router_->Run(); });
    return Status::Ok();
  }

  Status Connect(int* fd) const { return ConnectUnix(front_path_, fd); }

  Status Stop() {
    router_->RequestShutdown();
    thread_.join();
    fleet_.Shutdown();
    return result_;
  }

  int num_shards() const { return fleet_.num_shards(); }
  pid_t worker_pid(int shard) const { return fleet_.worker_pid(shard); }

 private:
  static int harness_counter_;

  ServeOptions options_;
  ShardFleet fleet_;
  std::string front_path_;
  std::unique_ptr<ShardRouter> router_;
  std::thread thread_;
  Status result_;
};

int RouterHarness::harness_counter_ = 0;

Status RoundTrip(int fd, const std::vector<uint8_t>& request,
                 std::vector<uint8_t>* response) {
  if (const Status status = SendFrame(fd, request); !status.ok()) {
    return status;
  }
  return RecvFrame(fd, response);
}

// Sends one request through the router and expects a kOk heat map back.
HeatmapGrid RoutedGrid(int fd, const WireRequest& request) {
  std::vector<uint8_t> reply;
  const Status status = RoundTrip(fd, EncodeRequest(request), &reply);
  EXPECT_TRUE(status.ok()) << status.ToString();
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  EXPECT_TRUE(decoded.has_value()) << error;
  if (decoded.has_value()) {
    EXPECT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
    if (decoded->response.has_value()) return decoded->response->grid;
  }
  return HeatmapGrid(1, 1, kDomain);
}

TEST(ShardRouterTest, RoutedResponsesAreBitIdenticalToDirectExecute) {
  // The differential corpus: every metric, workers sweeping with every
  // slab decomposition. The reference engine always runs the sequential
  // single-slab path — the routed raster must match it bit for bit.
  const Metric metrics[] = {Metric::kLInf, Metric::kL1, Metric::kL2};
  for (const int slabs : {1, 2, 4, 8}) {
    SCOPED_TRACE("worker slabs " + std::to_string(slabs));
    RouterHarness harness;
    ASSERT_TRUE(harness.Start(/*num_shards=*/2, slabs).ok());
    int fd = -1;
    ASSERT_TRUE(harness.Connect(&fd).ok());

    SizeInfluence measure;
    HeatmapEngineOptions reference_options;
    reference_options.num_threads = 1;
    HeatmapEngine reference(measure, reference_options);

    for (size_t m = 0; m < std::size(metrics); ++m) {
      SCOPED_TRACE("metric " + std::to_string(m));
      const auto set = CircleSetSnapshot::Make(
          MakeCircles(100 + 10 * slabs + m, 40), metrics[m]);
      const CircleSetHandle handle =
          reference.registry().Register(set->circles(), set->metric());
      // Inline once, then by hash — different rasters each time.
      bool inline_circles = true;
      for (const int size : {24, 33, 48}) {
        const HeatmapGrid routed = RoutedGrid(
            fd, MakeWireRequest(*set, kDomain, size, size, inline_circles));
        inline_circles = false;
        const HeatmapResponse direct =
            reference.Execute(HeatmapRequestV2{handle, kDomain, size, size});
        ASSERT_EQ(routed.width(), size);
        ASSERT_EQ(routed.height(), size);
        EXPECT_EQ(routed.values(), direct.grid.values());
      }
    }
    ::close(fd);
    EXPECT_TRUE(harness.Stop().ok());
  }
}

TEST(ShardRouterTest, HashAffinityKeepsByHashRequestsResolvable) {
  // Register several distinct sets inline-once, covering both shards,
  // then hammer each with by-hash requests: if routing were not a pure
  // function of the content hash, some request would land on a shard
  // that never saw the set and fail with kUnknownCircleSet.
  RouterHarness harness;
  ASSERT_TRUE(harness.Start(/*num_shards=*/2, /*worker_slabs=*/1).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  std::map<uint64_t, int> sets_per_shard;
  constexpr int kSets = 6;
  for (int i = 0; i < kSets; ++i) {
    const auto set =
        CircleSetSnapshot::Make(MakeCircles(200 + i, 12), Metric::kLInf);
    ++sets_per_shard[set->content_hash() % 2];
    std::vector<uint8_t> reply;
    ASSERT_TRUE(
        RoundTrip(fd, EncodeRequest(MakeWireRequest(*set, kDomain, 8, 8, true)),
                  &reply)
            .ok());
    for (int j = 0; j < 3; ++j) {
      std::string error;
      const auto decoded = DecodeResponse(reply, &error);
      ASSERT_TRUE(decoded.has_value()) << error;
      EXPECT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
      ASSERT_TRUE(RoundTrip(fd,
                            EncodeRequest(MakeWireRequest(*set, kDomain, 8, 8,
                                                          /*include=*/false)),
                            &reply)
                      .ok());
    }
  }
  // The seeds above really did exercise both shards.
  EXPECT_EQ(sets_per_shard.size(), 2u);

  // A hash nobody registered errors instead of hanging or misrouting.
  const auto stranger =
      CircleSetSnapshot::Make(MakeCircles(999, 12), Metric::kLInf);
  std::vector<uint8_t> reply;
  ASSERT_TRUE(RoundTrip(fd,
                        EncodeRequest(MakeWireRequest(*stranger, kDomain, 8, 8,
                                                      /*include=*/false)),
                        &reply)
                  .ok());
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kUnknownCircleSet);

  // A frame the router cannot even peek a hash from is answered by the
  // router itself, as a malformed-request error.
  std::vector<uint8_t> garbage(80, 0xAB);
  ASSERT_TRUE(RoundTrip(fd, garbage, &reply).ok());
  const auto garbage_reply = DecodeResponse(reply, &error);
  ASSERT_TRUE(garbage_reply.has_value()) << error;
  EXPECT_EQ(garbage_reply->status, WireStatus::kMalformedRequest);

  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

TEST(ShardRouterTest, ResponsesComeBackInSubmissionOrder) {
  // Interleave a burst of requests over two sets (usually living on
  // different shards) without reading a single response: the router's
  // per-client reorder buffer must hand the responses back in submission
  // order even though the two shards drain independently. Each request
  // uses a distinct raster size, so order is visible in the responses.
  RouterHarness harness;
  ASSERT_TRUE(harness.Start(/*num_shards=*/2, /*worker_slabs=*/1).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  const auto set_a =
      CircleSetSnapshot::Make(MakeCircles(301, 30), Metric::kL2);
  const auto set_b =
      CircleSetSnapshot::Make(MakeCircles(302, 30), Metric::kL1);
  constexpr int kBurst = 16;
  std::vector<int> widths;
  for (int i = 0; i < kBurst; ++i) {
    const auto& set = (i % 2 == 0) ? set_a : set_b;
    const int width = 8 + i;  // distinct per request
    widths.push_back(width);
    ASSERT_TRUE(SendFrame(fd, EncodeRequest(MakeWireRequest(
                                  *set, kDomain, width, width,
                                  /*include_circles=*/i < 2)))
                    .ok());
  }
  for (int i = 0; i < kBurst; ++i) {
    std::vector<uint8_t> reply;
    ASSERT_TRUE(RecvFrame(fd, &reply).ok()) << "response " << i;
    std::string error;
    const auto decoded = DecodeResponse(reply, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
    EXPECT_EQ(decoded->response->grid.width(), widths[i])
        << "response " << i << " out of order";
  }
  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

TEST(ShardRouterTest, StatsFanOutMergesTheWholeFleet) {
  RouterHarness harness;
  ASSERT_TRUE(harness.Start(/*num_shards=*/2, /*worker_slabs=*/1).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  // Register two sets (one inline request each) and fan a few by-hash
  // requests over them.
  constexpr int kPerSet = 3;
  int total = 0;
  for (int s = 0; s < 2; ++s) {
    const auto set =
        CircleSetSnapshot::Make(MakeCircles(400 + s, 15), Metric::kLInf);
    for (int i = 0; i < kPerSet; ++i) {
      std::vector<uint8_t> reply;
      ASSERT_TRUE(RoundTrip(fd,
                            EncodeRequest(MakeWireRequest(*set, kDomain, 10, 10,
                                                          /*include=*/i == 0)),
                            &reply)
                      .ok());
      ++total;
    }
  }

  std::vector<uint8_t> reply;
  ASSERT_TRUE(RoundTrip(fd, EncodeStatsRequest(), &reply).ok());
  std::string error;
  const auto stats = DecodeStatsResponse(reply, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->shards, 2u);
  // Every shard counts the fanned-out stats request it answered, so the
  // merged totals are the heat-map requests plus one per shard.
  EXPECT_EQ(stats->requests, static_cast<uint64_t>(total + 2));
  EXPECT_EQ(stats->ok, static_cast<uint64_t>(total + 2));
  EXPECT_EQ(stats->errors, 0u);
  EXPECT_EQ(stats->sets_registered, 2u);

  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

TEST(ShardRouterTest, ByTileRoutingIsBitIdenticalToDirectExecute) {
  // By-tile mode: the router decomposes each plain request into tile
  // sub-requests (shard = tile_id % N) and stitches the returned
  // fragments — the reassembled grid must match a direct single-engine
  // Execute bit for bit, for every metric, inline and by hash.
  RouterHarness harness;
  ASSERT_TRUE(
      harness.Start(/*num_shards=*/2, /*worker_slabs=*/2, 3, 3).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  SizeInfluence measure;
  HeatmapEngineOptions reference_options;
  reference_options.num_threads = 1;
  HeatmapEngine reference(measure, reference_options);

  const Metric metrics[] = {Metric::kLInf, Metric::kL1, Metric::kL2};
  for (size_t m = 0; m < std::size(metrics); ++m) {
    SCOPED_TRACE("metric " + std::to_string(m));
    const auto set =
        CircleSetSnapshot::Make(MakeCircles(500 + m, 40), metrics[m]);
    const CircleSetHandle handle =
        reference.registry().Register(set->circles(), set->metric());
    // The inline fan-out registers the set on every shard that owns a
    // tile, so the later by-hash requests resolve everywhere.
    bool inline_circles = true;
    for (const int size : {24, 33}) {
      const HeatmapGrid routed = RoutedGrid(
          fd, MakeWireRequest(*set, kDomain, size, size, inline_circles));
      inline_circles = false;
      const HeatmapResponse direct =
          reference.Execute(HeatmapRequestV2{handle, kDomain, size, size});
      ASSERT_EQ(routed.width(), size);
      ASSERT_EQ(routed.height(), size);
      EXPECT_EQ(routed.values(), direct.grid.values());
    }
  }
  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

TEST(ShardRouterTest, ByTileStatsCountTileFragmentsAcrossTheFleet) {
  // One plain request through a 2x2 by-tile router fans four tile
  // sub-requests across the fleet; the merged stats must report them as
  // tile requests/fragments (both shards contribute).
  RouterHarness harness;
  ASSERT_TRUE(
      harness.Start(/*num_shards=*/2, /*worker_slabs=*/1, 2, 2).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  const auto set =
      CircleSetSnapshot::Make(MakeCircles(600, 20), Metric::kLInf);
  std::vector<uint8_t> reply;
  ASSERT_TRUE(RoundTrip(fd,
                        EncodeRequest(MakeWireRequest(*set, kDomain, 16, 16,
                                                      /*include=*/true)),
                        &reply)
                  .ok());
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;

  ASSERT_TRUE(RoundTrip(fd, EncodeStatsRequest(), &reply).ok());
  const auto stats = DecodeStatsResponse(reply, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->shards, 2u);
  EXPECT_EQ(stats->tile_requests, 4u);
  EXPECT_EQ(stats->tile_fragments, 4u);
  // Every shard saw the inline circles once (tile_id % 2 covers both).
  EXPECT_EQ(stats->sets_registered, 2u);
  EXPECT_EQ(stats->errors, 0u);

  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

TEST(ShardRouterTest, ByTileKilledShardYieldsOneErrorNotAPartialGrid) {
  // Kill a worker out from under the router, then route a request whose
  // fan-out needs it: the reply must be a single error response — never
  // a stitched grid missing the dead shard's tiles.
  RouterHarness harness;
  ASSERT_TRUE(
      harness.Start(/*num_shards=*/2, /*worker_slabs=*/1, 2, 2).ok());
  int fd = -1;
  ASSERT_TRUE(harness.Connect(&fd).ok());

  const auto set =
      CircleSetSnapshot::Make(MakeCircles(700, 20), Metric::kL2);
  // A healthy round-trip first, so the kill really happens mid-stream.
  std::vector<uint8_t> reply;
  ASSERT_TRUE(RoundTrip(fd,
                        EncodeRequest(MakeWireRequest(*set, kDomain, 12, 12,
                                                      /*include=*/true)),
                        &reply)
                  .ok());
  std::string error;
  auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;

  ASSERT_EQ(::kill(harness.worker_pid(1), SIGKILL), 0);

  // Whether the router has already noticed the death (alive pre-check
  // refuses to fan) or discovers it when the shard connection drops
  // (FailShard resolves the outstanding fragments), the client gets
  // exactly one well-formed error response.
  ASSERT_TRUE(RoundTrip(fd,
                        EncodeRequest(MakeWireRequest(*set, kDomain, 12, 12,
                                                      /*include=*/true)),
                        &reply)
                  .ok());
  decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_NE(decoded->status, WireStatus::kOk);
  EXPECT_FALSE(decoded->response.has_value());

  ::close(fd);
  EXPECT_TRUE(harness.Stop().ok());
}

}  // namespace
}  // namespace rnnhm
