#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/crest.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"

namespace rnnhm {
namespace {

TEST(RegionQueryTest, TopKOrderingAndTruncation) {
  RegionQuerySink sink;
  const Rect r{{0, 0}, {1, 1}};
  const std::vector<int32_t> a{0}, b{1}, c{0, 1};
  sink.OnRegionLabel(r, a, 1.0);
  sink.OnRegionLabel(r, b, 5.0);
  sink.OnRegionLabel(r, c, 3.0);
  const auto top2 = sink.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_DOUBLE_EQ(top2[0].influence, 5.0);
  EXPECT_EQ(top2[0].rnn, b);
  EXPECT_DOUBLE_EQ(top2[1].influence, 3.0);
  const auto top10 = sink.TopK(10);
  EXPECT_EQ(top10.size(), 3u);
}

TEST(RegionQueryTest, RelabelingSameSetKeepsOneEntry) {
  RegionQuerySink sink;
  const std::vector<int32_t> a{2, 5};
  sink.OnRegionLabel(Rect{{0, 0}, {1, 1}}, a, 2.0);
  sink.OnRegionLabel(Rect{{3, 3}, {4, 4}}, a, 2.0);
  EXPECT_EQ(sink.NumDistinctSets(), 1u);
  const auto top = sink.TopK(5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].representative, Rect({{3, 3}, {4, 4}}));
}

TEST(RegionQueryTest, ThresholdFiltersInclusively) {
  RegionQuerySink sink;
  const Rect r{{0, 0}, {1, 1}};
  const std::vector<int32_t> a{0}, b{1}, c{2};
  sink.OnRegionLabel(r, a, 1.0);
  sink.OnRegionLabel(r, b, 2.0);
  sink.OnRegionLabel(r, c, 3.0);
  const auto above = sink.AboveThreshold(2.0);
  ASSERT_EQ(above.size(), 2u);
  EXPECT_DOUBLE_EQ(above[0].influence, 3.0);
  EXPECT_DOUBLE_EQ(above[1].influence, 2.0);
  EXPECT_TRUE(sink.AboveThreshold(100.0).empty());
}

TEST(RegionQueryTest, EndToEndWithCrest) {
  Rng rng(150);
  std::vector<NnCircle> circles;
  for (int i = 0; i < 80; ++i) {
    circles.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                               rng.Uniform(0.05, 0.25), i});
  }
  SizeInfluence measure;
  RegionQuerySink query;
  MaxInfluenceSink max_sink;
  TeeSink tee({&query, &max_sink});
  RunCrest(circles, measure, &tee);
  const auto top = query.TopK(5);
  ASSERT_FALSE(top.empty());
  // Top-1 must equal the global max; the list must be non-increasing.
  EXPECT_DOUBLE_EQ(top[0].influence, max_sink.max_influence());
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].influence, top[i].influence);
  }
  // Thresholding at the k-th value returns at least k regions.
  const auto above = query.AboveThreshold(top.back().influence);
  EXPECT_GE(above.size(), top.size());
}

}  // namespace
}  // namespace rnnhm
