#include "query/heatmap_engine.h"

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomCircles(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

HeatmapEngineOptions Options(int threads, int slabs = 1) {
  HeatmapEngineOptions options;
  options.num_threads = threads;
  options.slabs_per_request = slabs;
  return options;
}

HeatmapRequest RandomRequest(int n, uint64_t seed) {
  Rng rng(seed);
  HeatmapRequest req;
  req.circles = RandomCircles(n, rng);
  req.domain = Rect{{-0.1, -0.1}, {1.1, 1.1}};
  req.width = 64;
  req.height = 64;
  return req;
}

std::vector<HeatmapRequest> RandomBatch(int count) {
  std::vector<HeatmapRequest> batch;
  for (int i = 0; i < count; ++i) {
    batch.push_back(RandomRequest(40 + 10 * i, 1000 + i));
  }
  return batch;
}

/// The sequential reference every engine configuration must reproduce
/// bit-for-bit.
HeatmapGrid Reference(const HeatmapRequest& req,
                      const InfluenceMeasure& measure) {
  return BuildHeatmapLInf(req.circles, measure, req.domain, req.width,
                          req.height);
}

void ExpectBitIdentical(const HeatmapGrid& got, const HeatmapGrid& want) {
  ASSERT_EQ(got.width(), want.width());
  ASSERT_EQ(got.height(), want.height());
  ASSERT_EQ(got.values().size(), want.values().size());
  for (size_t i = 0; i < got.values().size(); ++i) {
    ASSERT_EQ(got.values()[i], want.values()[i]) << "flat index " << i;
  }
}

TEST(HeatmapEngineTest, SingleThreadModeMatchesSequentialCrest) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(1));
  EXPECT_EQ(engine.num_threads(), 1);
  const auto batch = RandomBatch(6);
  const auto responses = engine.RunBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(responses[i].grid, Reference(batch[i], measure));
    EXPECT_GT(responses[i].stats.num_labelings, 0u);
  }
}

TEST(HeatmapEngineTest, MultiThreadBatchIsBitIdenticalToSequential) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(4));
  EXPECT_EQ(engine.num_threads(), 4);
  const auto batch = RandomBatch(12);
  const auto responses = engine.RunBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(responses[i].grid, Reference(batch[i], measure));
  }
}

TEST(HeatmapEngineTest, SlabParallelSweepIsBitIdenticalToSequential) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(2, 4));
  const auto batch = RandomBatch(4);
  const auto responses = engine.RunBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(responses[i].grid, Reference(batch[i], measure));
  }
}

TEST(HeatmapEngineTest, WeightedMeasureFlowsThroughUnchanged) {
  Rng rng(7);
  std::vector<double> weights;
  for (int i = 0; i < 80; ++i) weights.push_back(rng.Uniform(0.5, 2.0));
  WeightedInfluence measure(weights);
  HeatmapEngine engine(measure, Options(3));
  const auto req = RandomRequest(80, 42);
  const auto response = engine.Submit(req).get();
  ExpectBitIdentical(response.grid, Reference(req, measure));
}

TEST(HeatmapEngineTest, ExecuteBypassesQueueWithSameResult) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(2));
  const auto req = RandomRequest(50, 99);
  ExpectBitIdentical(engine.Execute(req).grid, Reference(req, measure));
}

TEST(HeatmapEngineTest, EmptyBatchAndEmptyRequestAreServed) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(2));
  EXPECT_TRUE(engine.RunBatch(std::vector<HeatmapRequest>{}).empty());
  HeatmapRequest req;  // no circles
  req.domain = Rect{{0, 0}, {1, 1}};
  req.width = 8;
  req.height = 8;
  const auto response = engine.Submit(std::move(req)).get();
  for (const double v : response.grid.values()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(response.stats.num_events, 0u);
}

// Many client threads hammering Submit concurrently; run under ASan/TSan to
// catch races. Every response must still equal the sequential reference.
TEST(HeatmapEngineTest, ConcurrentSubmissionFromManyThreadsIsRaceFree) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(4));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<HeatmapResponse>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&engine, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            engine.Submit(RandomRequest(30, 500 + t * kPerThread + i)));
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto response = futures[t][i].get();
      const auto req = RandomRequest(30, 500 + t * kPerThread + i);
      ExpectBitIdentical(response.grid, Reference(req, measure));
    }
  }
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(HeatmapEngineTest, PendingDrainsToZero) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(2));
  auto batch = RandomBatch(5);
  std::vector<std::future<HeatmapResponse>> futures;
  for (auto& r : batch) futures.push_back(engine.Submit(std::move(r)));
  for (auto& f : futures) f.get();
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(HeatmapEngineTest, DestructorDrainsOutstandingRequests) {
  SizeInfluence measure;
  std::future<HeatmapResponse> future;
  {
    HeatmapEngine engine(measure, Options(1));
    future = engine.Submit(RandomRequest(60, 7));
  }  // destructor joins after serving the queue
  const auto response = future.get();
  EXPECT_GT(response.stats.num_labelings, 0u);
}

TEST(HeatmapEngineTest, DestructorDrainsDeepQueueAcrossWorkers) {
  // Many requests still queued when the engine dies: every future must
  // still resolve with a correct response (no request is dropped).
  SizeInfluence measure;
  std::vector<std::future<HeatmapResponse>> futures;
  constexpr int kQueued = 16;
  {
    HeatmapEngine engine(measure, Options(2));
    for (int i = 0; i < kQueued; ++i) {
      futures.push_back(engine.Submit(RandomRequest(40, 9000 + i)));
    }
  }
  for (int i = 0; i < kQueued; ++i) {
    const auto response = futures[i].get();
    ExpectBitIdentical(response.grid,
                       Reference(RandomRequest(40, 9000 + i), measure));
  }
}

// --- Failure paths --------------------------------------------------------

/// Throws for every nonempty RNN set; the empty-set evaluation that seeds
/// the grid background stays safe.
class ThrowingInfluence : public InfluenceMeasure {
 public:
  double Evaluate(std::span<const int32_t> clients) const override {
    if (!clients.empty()) {
      throw std::runtime_error("influence backend unavailable");
    }
    return 0.0;
  }
};

TEST(HeatmapEngineTest, SubmitFuturePropagatesWorkerExceptions) {
  ThrowingInfluence measure;
  HeatmapEngine engine(measure, Options(2));
  auto failing = engine.Submit(RandomRequest(40, 1));
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker that threw must survive and keep serving. An empty request
  // never evaluates a nonempty set, so it succeeds on the same engine.
  HeatmapRequest empty;
  empty.domain = Rect{{0, 0}, {1, 1}};
  empty.width = 4;
  empty.height = 4;
  const auto response = engine.Submit(std::move(empty)).get();
  EXPECT_EQ(response.stats.num_events, 0u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(HeatmapEngineTest, AllFailingBatchResolvesEveryFuture) {
  ThrowingInfluence measure;
  HeatmapEngine engine(measure, Options(4));
  std::vector<std::future<HeatmapResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(engine.Submit(RandomRequest(30, 100 + i)));
  }
  for (auto& f : futures) EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(HeatmapEngineTest, RunBatchKeepsRequestOrderUnderContention) {
  // Responses must come back in request order even with workers racing and
  // other threads hammering Submit concurrently. Each request's raster
  // size encodes its batch position.
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(4));
  std::vector<HeatmapRequest> batch;
  constexpr int kBatch = 24;
  for (int i = 0; i < kBatch; ++i) {
    HeatmapRequest req = RandomRequest(30 + i, 700 + i);
    req.width = 8 + i;  // marker: response i must have width 8 + i
    batch.push_back(std::move(req));
  }
  std::thread noise([&engine] {
    std::vector<std::future<HeatmapResponse>> side;
    for (int i = 0; i < 48; ++i) {
      side.push_back(engine.Submit(RandomRequest(20, 3000 + i)));
    }
    for (auto& f : side) f.get();
  });
  const auto responses = engine.RunBatch(std::move(batch));
  noise.join();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(responses[i].grid.width(), 8 + i) << "position " << i;
  }
}

// --- L2 requests through the engine ---------------------------------------

std::vector<NnCircle> RandomDisks(int n, uint64_t seed) {
  Rng rng(seed);
  return RandomCircles(n, rng);
}

HeatmapRequest L2Request(int n, uint64_t seed) {
  HeatmapRequest req;
  req.circles = RandomDisks(n, seed);
  req.domain = Rect{{-0.1, -0.1}, {1.1, 1.1}};
  req.width = 56;
  req.height = 56;
  req.metric = Metric::kL2;
  return req;
}

TEST(HeatmapEngineTest, L2RequestsMatchSequentialArcSweepBitForBit) {
  SizeInfluence measure;
  for (const int slabs : {1, 2, 4, 8}) {
    HeatmapEngine engine(measure, Options(2, slabs));
    const auto req = L2Request(60, 2100 + slabs);
    const auto response = engine.Submit(req).get();
    ExpectBitIdentical(response.grid,
                       BuildHeatmapL2(req.circles, measure, req.domain,
                                      req.width, req.height));
    EXPECT_GT(response.l2_stats.num_labelings, 0u);
    EXPECT_EQ(response.stats.num_labelings, 0u);  // arc sweep only
  }
}

TEST(HeatmapEngineTest, L2StatsAggregateAcrossSlabs) {
  // The engine must surface the arc sweep's counters: global circle counts
  // equal the sequential sweep's, per-shard counters sum to at least it.
  SizeInfluence measure;
  const auto req = L2Request(80, 2200);
  CountingSink sink;
  const CrestL2Stats sequential =
      RunCrestL2(req.circles, measure, &sink);
  for (const int slabs : {1, 4}) {
    HeatmapEngine engine(measure, Options(1, slabs));
    const auto response = engine.Submit(req).get();
    EXPECT_EQ(response.l2_stats.num_circles, sequential.num_circles);
    EXPECT_EQ(response.l2_stats.num_skipped_circles,
              sequential.num_skipped_circles);
    EXPECT_GE(response.l2_stats.num_labelings, sequential.num_labelings);
    if (slabs == 1) {
      EXPECT_EQ(response.l2_stats.num_labelings, sequential.num_labelings);
      EXPECT_EQ(response.l2_stats.num_events, sequential.num_events);
    }
  }
}

TEST(HeatmapEngineTest, MixedMetricBatchDispatchesPerRequest) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(3, 2));
  std::vector<HeatmapRequest> batch;
  batch.push_back(RandomRequest(40, 51));       // kLInf
  batch.push_back(L2Request(40, 52));           // kL2
  HeatmapRequest l1 = RandomRequest(40, 53);
  l1.metric = Metric::kL1;
  batch.push_back(std::move(l1));
  const auto responses = engine.RunBatch(std::move(batch));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_GT(responses[0].stats.num_labelings, 0u);
  EXPECT_EQ(responses[0].l2_stats.num_labelings, 0u);
  EXPECT_GT(responses[1].l2_stats.num_labelings, 0u);
  EXPECT_EQ(responses[1].stats.num_labelings, 0u);
  EXPECT_GT(responses[2].stats.num_labelings, 0u);
}

// --- Serving API v2: handles + registry -----------------------------------

TEST(HeatmapEngineV2Test, HandleRequestsMatchLegacyInlineBitForBit) {
  SizeInfluence measure;
  for (const int slabs : {1, 4}) {
    HeatmapEngine engine(measure, Options(2, slabs));
    for (const Metric metric : {Metric::kLInf, Metric::kL1, Metric::kL2}) {
      HeatmapRequest legacy = RandomRequest(45, 4000 + slabs);
      legacy.metric = metric;
      const CircleSetHandle handle =
          engine.registry().Register(legacy.circles, metric);
      const HeatmapResponse v2 = engine.Execute(HeatmapRequestV2{
          handle, legacy.domain, legacy.width, legacy.height});
      const HeatmapResponse inline_response = engine.Execute(legacy);
      ExpectBitIdentical(v2.grid, inline_response.grid);
    }
  }
}

TEST(HeatmapEngineV2Test, SubmitAndRunBatchServeHandles) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(3));
  const HeatmapRequest base = RandomRequest(50, 4100);
  const CircleSetHandle handle =
      engine.registry().Register(base.circles, base.metric);
  // One shared set fanned across resolutions — the registry stores the
  // circles once, each response is still the exact sequential raster.
  std::vector<HeatmapRequestV2> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(
        HeatmapRequestV2{handle, base.domain, 16 + i, 16 + i});
  }
  const auto responses = engine.RunBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(responses[i].grid.width(), 16 + i);
    HeatmapRequest reference = base;
    reference.width = reference.height = 16 + i;
    ExpectBitIdentical(responses[i].grid, Reference(reference, measure));
  }
}

TEST(HeatmapEngineV2Test, ReleasedHandleStaysServableWhileInFlight) {
  SizeInfluence measure;
  HeatmapEngine engine(measure, Options(2));
  const HeatmapRequest base = RandomRequest(60, 4200);
  const CircleSetHandle handle =
      engine.registry().Register(base.circles, base.metric);
  // Submit pins the snapshot; releasing the registration afterwards must
  // not unmap the data under the worker.
  auto future = engine.Submit(
      HeatmapRequestV2{handle, base.domain, base.width, base.height});
  EXPECT_TRUE(engine.registry().Release(handle));
  ExpectBitIdentical(future.get().grid, Reference(base, measure));
}

TEST(HeatmapEngineV2Test, EnginesShareARegistryPassedViaOptions) {
  SizeInfluence measure;
  auto registry = std::make_shared<CircleSetRegistry>();
  HeatmapEngineOptions options = Options(1);
  options.registry = registry;
  HeatmapEngine a(measure, options);
  HeatmapEngine b(measure, options);
  const HeatmapRequest base = RandomRequest(40, 4300);
  const CircleSetHandle handle =
      registry->Register(base.circles, base.metric);
  const HeatmapRequestV2 request{handle, base.domain, base.width,
                                 base.height};
  ExpectBitIdentical(a.Execute(request).grid, b.Execute(request).grid);
  EXPECT_EQ(&a.registry(), registry.get());
  EXPECT_EQ(&b.registry(), registry.get());
}

TEST(HeatmapEngineV2Test, HandleAndInlinePathsShareTheCache) {
  SizeInfluence measure;
  HeatmapEngineOptions options = Options(1);
  options.cache_bytes = 16 << 20;
  HeatmapEngine engine(measure, options);
  const HeatmapRequest base = RandomRequest(55, 4400);
  // Miss via the legacy inline path...
  const HeatmapResponse cold = engine.Execute(base);
  EXPECT_FALSE(cold.from_cache);
  // ...hit via the handle path (same content, same geometry)...
  const CircleSetHandle handle =
      engine.registry().Register(base.circles, base.metric);
  const HeatmapResponse warm = engine.Execute(
      HeatmapRequestV2{handle, base.domain, base.width, base.height});
  EXPECT_TRUE(warm.from_cache);
  ExpectBitIdentical(warm.grid, cold.grid);
  // ...and hit again through the inline const-ref path (copy-free).
  const HeatmapResponse warm_inline = engine.Execute(base);
  EXPECT_TRUE(warm_inline.from_cache);
  ExpectBitIdentical(warm_inline.grid, cold.grid);
  EXPECT_EQ(engine.cache_stats().hits, 2u);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
}

TEST(HeatmapEngineV2Test, RepeatedHandleExecutesHitWithoutRehashing) {
  SizeInfluence measure;
  HeatmapEngineOptions options = Options(1);
  options.cache_bytes = 16 << 20;
  HeatmapEngine engine(measure, options);
  const HeatmapRequest base = RandomRequest(70, 4500);
  const CircleSetHandle handle =
      engine.registry().Register(base.circles, base.metric);
  const HeatmapRequestV2 request{handle, base.domain, base.width,
                                 base.height};
  const HeatmapResponse first = engine.Execute(request);
  EXPECT_FALSE(first.from_cache);
  for (int i = 0; i < 5; ++i) {
    const HeatmapResponse again = engine.Execute(request);
    EXPECT_TRUE(again.from_cache);
    ExpectBitIdentical(again.grid, first.grid);
  }
  EXPECT_EQ(engine.cache_stats().hits, 5u);
}

}  // namespace
}  // namespace rnnhm
