#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"
#include "index/enclosure_index.h"

namespace rnnhm {
namespace {

TEST(EnclosureIndexTest, EmptyIndex) {
  EnclosureIndex index({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.StabIds({0, 0}).empty());
}

TEST(EnclosureIndexTest, SingleRectangleClosedBoundaries) {
  EnclosureIndex index({Rect{{0, 0}, {2, 2}}});
  EXPECT_EQ(index.StabIds({1, 1}), (std::vector<int32_t>{0}));
  EXPECT_EQ(index.StabIds({0, 0}), (std::vector<int32_t>{0}));   // corner
  EXPECT_EQ(index.StabIds({2, 1}), (std::vector<int32_t>{0}));   // edge
  EXPECT_TRUE(index.StabIds({2.01, 1}).empty());
  EXPECT_TRUE(index.StabIds({-0.01, 1}).empty());
}

TEST(EnclosureIndexTest, NestedAndOverlapping) {
  EnclosureIndex index({Rect{{0, 0}, {10, 10}}, Rect{{2, 2}, {8, 8}},
                        Rect{{4, 4}, {6, 6}}, Rect{{9, 9}, {12, 12}}});
  auto sorted = [](std::vector<int32_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(index.StabIds({5, 5})), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(sorted(index.StabIds({3, 3})), (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(sorted(index.StabIds({9.5, 9.5})),
            (std::vector<int32_t>{0, 3}));
  EXPECT_EQ(sorted(index.StabIds({11, 11})), (std::vector<int32_t>{3}));
}

class EnclosureProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnclosureProperty, MatchesBruteForce) {
  const int n = GetParam();
  Rng rng(1000 + n);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    rects.push_back(
        Rect{{x, y}, {x + rng.Uniform(0, 0.3), y + rng.Uniform(0, 0.3)}});
  }
  EnclosureIndex index(rects);
  for (int q = 0; q < 300; ++q) {
    const Point p{rng.Uniform(-0.1, 1.2), rng.Uniform(-0.1, 1.2)};
    std::vector<int32_t> got = index.StabIds(p);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].ContainsClosed(p)) want.push_back(static_cast<int32_t>(i));
    }
    ASSERT_EQ(got, want) << "point " << p.x << "," << p.y;
  }
}

TEST_P(EnclosureProperty, QueriesAtSharedEndpoints) {
  // Rectangles sharing endpoints stress the elementary-interval mapping.
  const int n = GetParam();
  Rng rng(2000 + n);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.NextBounded(10));
    const double y = static_cast<double>(rng.NextBounded(10));
    rects.push_back(Rect{{x, y},
                         {x + 1.0 + static_cast<double>(rng.NextBounded(3)),
                          y + 1.0 + static_cast<double>(rng.NextBounded(3))}});
  }
  EnclosureIndex index(rects);
  for (int gx = 0; gx <= 13; ++gx) {
    for (int gy = 0; gy <= 13; ++gy) {
      const Point p{static_cast<double>(gx), static_cast<double>(gy)};
      std::vector<int32_t> got = index.StabIds(p);
      std::sort(got.begin(), got.end());
      std::vector<int32_t> want;
      for (size_t i = 0; i < rects.size(); ++i) {
        if (rects[i].ContainsClosed(p)) {
          want.push_back(static_cast<int32_t>(i));
        }
      }
      ASSERT_EQ(got, want) << "grid point " << gx << "," << gy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnclosureProperty,
                         ::testing::Values(1, 2, 10, 100, 1000),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace rnnhm
