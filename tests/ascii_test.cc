#include <gtest/gtest.h>

#include <string>

#include "heatmap/ascii.h"
#include "heatmap/heatmap.h"

namespace rnnhm {
namespace {

TEST(AsciiTest, DimensionsAndOrientation) {
  HeatmapGrid grid(10, 10, Rect{{0, 0}, {1, 1}});
  // Hot pixel near the top-right corner.
  grid.At(9, 9) = 100.0;
  const std::string art = RenderAscii(grid, 20, 5);
  // 5 rows of 20 chars plus newlines.
  ASSERT_EQ(art.size(), 5u * 21);
  // The first (top) row must contain the hottest shade at its right end.
  const std::string top = art.substr(0, 20);
  EXPECT_EQ(top.back(), '@');
  // The bottom row stays cold.
  const std::string bottom = art.substr(4 * 21, 20);
  EXPECT_EQ(bottom.find('@'), std::string::npos);
}

TEST(AsciiTest, UniformGridRendersUniformly) {
  HeatmapGrid grid(4, 4, Rect{{0, 0}, {1, 1}}, 2.0);
  const std::string art = RenderAscii(grid, 8, 3);
  for (const char ch : art) {
    if (ch != '\n') EXPECT_EQ(ch, '@');  // everything at max
  }
}

TEST(AsciiTest, AllZeroGridIsBlank) {
  HeatmapGrid grid(4, 4, Rect{{0, 0}, {1, 1}}, 0.0);
  const std::string art = RenderAscii(grid, 8, 3);
  for (const char ch : art) {
    if (ch != '\n') EXPECT_EQ(ch, ' ');
  }
}

}  // namespace
}  // namespace rnnhm
