#include "query/wire.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "heatmap/influence.h"
#include "query/circle_set_registry.h"
#include "query/heatmap_engine.h"
#include "serve/wire_server.h"
#include "tile/tile_plan.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> MakeCircles(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<NnCircle> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.02, 0.2), i});
  }
  return out;
}

const Rect kDomain{{-0.1, -0.1}, {1.1, 1.1}};

WireRequest InlineRequest(uint64_t seed, int n, Metric metric,
                          int size = 32) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(seed, n), metric);
  return MakeWireRequest(*set, kDomain, size, size,
                         /*include_circles=*/true);
}

void ExpectSameRequest(const WireRequest& got, const WireRequest& want) {
  EXPECT_EQ(got.metric, want.metric);
  EXPECT_EQ(got.set_hash, want.set_hash);
  EXPECT_EQ(got.inline_circles, want.inline_circles);
  EXPECT_EQ(got.domain, want.domain);
  EXPECT_EQ(got.width, want.width);
  EXPECT_EQ(got.height, want.height);
  ASSERT_EQ(got.circles.size(), want.circles.size());
  for (size_t i = 0; i < got.circles.size(); ++i) {
    EXPECT_EQ(got.circles[i].center, want.circles[i].center);
    EXPECT_EQ(got.circles[i].radius, want.circles[i].radius);
    EXPECT_EQ(got.circles[i].client, want.circles[i].client);
  }
}

TEST(WireRequestTest, InlineRoundTripPreservesEveryField) {
  const WireRequest request = InlineRequest(1, 40, Metric::kL2);
  std::string error;
  const auto decoded = DecodeRequest(EncodeRequest(request), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  ExpectSameRequest(*decoded, request);
}

TEST(WireRequestTest, ByReferenceRoundTripCarriesOnlyTheHash) {
  const auto set =
      CircleSetSnapshot::Make(MakeCircles(2, 30), Metric::kLInf);
  const WireRequest request =
      MakeWireRequest(*set, kDomain, 48, 24, /*include_circles=*/false);
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  EXPECT_EQ(bytes.size(), 68u);  // header only, no circle payload
  std::string error;
  const auto decoded = DecodeRequest(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_FALSE(decoded->inline_circles);
  EXPECT_TRUE(decoded->circles.empty());
  EXPECT_EQ(decoded->set_hash, set->content_hash());
}

TEST(WireRequestTest, ZeroCircleInlineSetRoundTrips) {
  const auto set = CircleSetSnapshot::Make({}, Metric::kL1);
  const WireRequest request =
      MakeWireRequest(*set, kDomain, 8, 8, /*include_circles=*/true);
  std::string error;
  const auto decoded = DecodeRequest(EncodeRequest(request), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_TRUE(decoded->inline_circles);
  EXPECT_TRUE(decoded->circles.empty());
}

TEST(WireRequestTest, EveryTruncationDecodesToAnErrorNotACrash) {
  const std::vector<uint8_t> bytes =
      EncodeRequest(InlineRequest(3, 10, Metric::kL2));
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    EXPECT_FALSE(
        DecodeRequest(std::span(bytes.data(), len), &error).has_value())
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(WireRequestTest, CorruptedHeaderFieldsAreRejected) {
  const std::vector<uint8_t> good =
      EncodeRequest(InlineRequest(4, 12, Metric::kLInf));
  std::string error;
  ASSERT_TRUE(DecodeRequest(good, &error).has_value());

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeRequest(bad_magic, &error).has_value());

  auto bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_FALSE(DecodeRequest(bad_version, &error).has_value());

  auto bad_metric = good;
  bad_metric[8] = 7;
  EXPECT_FALSE(DecodeRequest(bad_metric, &error).has_value());

  auto bad_flags = good;
  bad_flags[9] |= 0x80;  // undefined flag bit
  EXPECT_FALSE(DecodeRequest(bad_flags, &error).has_value());

  auto bad_reserved = good;
  bad_reserved[10] = 1;
  EXPECT_FALSE(DecodeRequest(bad_reserved, &error).has_value());

  auto bad_width = good;
  bad_width[12] = 0;
  bad_width[13] = 0;
  bad_width[14] = 0;
  bad_width[15] = 0;
  EXPECT_FALSE(DecodeRequest(bad_width, &error).has_value());
}

TEST(WireRequestTest, CorruptedCirclePayloadFailsTheContentHash) {
  const std::vector<uint8_t> good =
      EncodeRequest(InlineRequest(5, 12, Metric::kL2));
  // Flip one byte in the middle of the circle payload: the embedded
  // content hash no longer matches, so the decoder must reject it.
  auto corrupted = good;
  corrupted[68 + 40] ^= 0x01;
  std::string error;
  EXPECT_FALSE(DecodeRequest(corrupted, &error).has_value());
  EXPECT_NE(error.find("content hash"), std::string::npos);
}

TEST(WireRequestTest, TrailingBytesAreRejected) {
  auto bytes = EncodeRequest(InlineRequest(6, 8, Metric::kLInf));
  bytes.push_back(0);
  std::string error;
  EXPECT_FALSE(DecodeRequest(bytes, &error).has_value());
}

// --- Responses ------------------------------------------------------------

HeatmapResponse ComputeResponse(uint64_t seed, int n, Metric metric,
                                int size = 24) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 8 << 20;  // exercise nonzero cache counters
  HeatmapEngine engine(measure, options);
  return engine.Execute(
      HeatmapRequest{MakeCircles(seed, n), kDomain, size, size, metric});
}

TEST(WireResponseTest, OkRoundTripPreservesGridStatsAndCacheCounters) {
  const HeatmapResponse response = ComputeResponse(7, 30, Metric::kL2);
  std::string error;
  const auto decoded = DecodeResponse(EncodeResponse(response), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kOk);
  ASSERT_TRUE(decoded->response.has_value());
  const HeatmapResponse& got = *decoded->response;
  EXPECT_EQ(got.grid.values(), response.grid.values());
  EXPECT_EQ(got.grid.domain(), response.grid.domain());
  EXPECT_EQ(got.l2_stats.num_labelings, response.l2_stats.num_labelings);
  EXPECT_EQ(got.l2_stats.num_cross_events,
            response.l2_stats.num_cross_events);
  EXPECT_EQ(got.from_cache, response.from_cache);
  EXPECT_EQ(got.cache.misses, response.cache.misses);
  EXPECT_EQ(got.cache.bytes, response.cache.bytes);
}

TEST(WireResponseTest, DegenerateOnePixelGridRoundTrips) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  const HeatmapResponse response = engine.Execute(
      HeatmapRequest{{}, Rect{{0, 0}, {1, 1}}, 1, 1, Metric::kLInf});
  std::string error;
  const auto decoded = DecodeResponse(EncodeResponse(response), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->response->grid.width(), 1);
  EXPECT_EQ(decoded->response->grid.height(), 1);
  EXPECT_EQ(decoded->response->grid.values(), response.grid.values());
}

TEST(WireResponseTest, ErrorResponseRoundTripsItsMessage) {
  const std::vector<uint8_t> bytes =
      EncodeErrorResponse(WireStatus::kUnknownCircleSet, "no such set");
  std::string error;
  const auto decoded = DecodeResponse(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kUnknownCircleSet);
  EXPECT_EQ(decoded->error, "no such set");
  EXPECT_FALSE(decoded->response.has_value());
}

TEST(WireResponseTest, EveryTruncationDecodesToAnErrorNotACrash) {
  const std::vector<uint8_t> bytes =
      EncodeResponse(ComputeResponse(8, 10, Metric::kLInf, 6));
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    EXPECT_FALSE(
        DecodeResponse(std::span(bytes.data(), len), &error).has_value())
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

// --- Framing --------------------------------------------------------------

TEST(WireFrameTest, FramesRoundTripThroughAFile) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  const std::vector<uint8_t> a = {1, 2, 3};
  const std::vector<uint8_t> empty;
  ASSERT_TRUE(WriteFrame(f, a));
  ASSERT_TRUE(WriteFrame(f, empty));
  std::rewind(f);
  std::string error;
  EXPECT_EQ(ReadFrame(f, &error), a);
  EXPECT_EQ(ReadFrame(f, &error), empty);
  EXPECT_FALSE(ReadFrame(f, &error).has_value());  // clean EOF
  EXPECT_TRUE(error.empty());
  std::fclose(f);
}

TEST(WireFrameTest, TruncatedFrameReportsAnError) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(WriteFrame(f, std::vector<uint8_t>{1, 2, 3, 4, 5}));
  // Drop the last byte of the payload.
  ASSERT_EQ(std::fflush(f), 0);
  std::rewind(f);
  uint8_t buffer[8];
  ASSERT_EQ(std::fread(buffer, 1, 8, f), 8u);
  std::FILE* cut = std::tmpfile();
  ASSERT_NE(cut, nullptr);
  ASSERT_EQ(std::fwrite(buffer, 1, 8, cut), 8u);
  std::rewind(cut);
  std::string error;
  EXPECT_FALSE(ReadFrame(cut, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::fclose(f);
  std::fclose(cut);
}

TEST(WireFrameTest, OversizedLengthPrefixIsRejected) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB
  ASSERT_EQ(std::fwrite(huge, 1, 4, f), 4u);
  std::rewind(f);
  std::string error;
  EXPECT_FALSE(ReadFrame(f, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::fclose(f);
}

// --- The serve loop -------------------------------------------------------

TEST(ServeWireStreamTest, ServesInlineAndByReferenceBitIdentically) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(9, 35), Metric::kL2);
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  // Frame 1 ships the set inline; frames 2-3 reference it by hash at
  // other resolutions.
  ASSERT_TRUE(WriteFrame(
      in, EncodeRequest(MakeWireRequest(*set, kDomain, 20, 20, true))));
  ASSERT_TRUE(WriteFrame(
      in, EncodeRequest(MakeWireRequest(*set, kDomain, 28, 28, false))));
  ASSERT_TRUE(WriteFrame(
      in, EncodeRequest(MakeWireRequest(*set, kDomain, 20, 20, false))));
  std::rewind(in);

  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 8 << 20;
  HeatmapEngine engine(measure, options);
  WireServeStats stats;
  std::string error;
  ASSERT_TRUE(ServeWireStream(in, out, engine, &stats, &error)) << error;
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.sets_registered, 1u);

  std::rewind(out);
  // Reference responses from an identical, separately configured engine.
  SizeInfluence reference_measure;
  HeatmapEngine reference(reference_measure, options);
  const CircleSetHandle handle =
      reference.registry().Register(set->circles(), set->metric());
  const int sizes[3] = {20, 28, 20};
  for (int i = 0; i < 3; ++i) {
    const auto frame = ReadFrame(out, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto decoded = DecodeResponse(*frame, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
    const HeatmapResponse direct = reference.Execute(
        HeatmapRequestV2{handle, kDomain, sizes[i], sizes[i]});
    EXPECT_EQ(decoded->response->grid.values(), direct.grid.values())
        << "request " << i;
  }
  // The third request repeats the first: it must have come from the
  // serve engine's cache, still bit-identical.
  EXPECT_FALSE(ReadFrame(out, &error).has_value());
  std::fclose(in);
  std::fclose(out);
}

TEST(ServeWireStreamTest, MalformedAndUnknownRequestsGetErrorResponses) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  // Frame 1: garbage payload. Frame 2: well-formed by-reference request
  // whose hash was never shipped. Frame 3: a valid request — the stream
  // must keep serving after errors.
  ASSERT_TRUE(WriteFrame(in, std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
  const auto set =
      CircleSetSnapshot::Make(MakeCircles(10, 12), Metric::kLInf);
  ASSERT_TRUE(WriteFrame(
      in, EncodeRequest(MakeWireRequest(*set, kDomain, 16, 16, false))));
  ASSERT_TRUE(WriteFrame(
      in, EncodeRequest(MakeWireRequest(*set, kDomain, 16, 16, true))));
  std::rewind(in);

  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  WireServeStats stats;
  std::string error;
  ASSERT_TRUE(ServeWireStream(in, out, engine, &stats, &error)) << error;
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 2u);

  std::rewind(out);
  const WireStatus expected[3] = {WireStatus::kMalformedRequest,
                                  WireStatus::kUnknownCircleSet,
                                  WireStatus::kOk};
  for (int i = 0; i < 3; ++i) {
    const auto frame = ReadFrame(out, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto decoded = DecodeResponse(*frame, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(decoded->status, expected[i]) << "frame " << i;
  }
  std::fclose(in);
  std::fclose(out);
}

TEST(ServeWireStreamTest, OversizedRasterIsRefusedPolitely) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(11, 5), Metric::kL2);
  WireRequest request = MakeWireRequest(*set, kDomain, 1, 1, true);
  request.width = 1 << 15;
  request.height = 1 << 15;  // 2^30 pixels > kMaxWirePixels
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  ASSERT_TRUE(WriteFrame(in, EncodeRequest(request)));
  std::rewind(in);
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  std::string error;
  ASSERT_TRUE(ServeWireStream(in, out, engine, nullptr, &error)) << error;
  std::rewind(out);
  const auto frame = ReadFrame(out, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  const auto decoded = DecodeResponse(*frame, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kMalformedRequest);
  std::fclose(in);
  std::fclose(out);
}

// --- v3 additions: stats op, status mapping, routing peek -----------------

TEST(WireStatsTest, RequestRoundTripsAndIsRecognized) {
  const std::vector<uint8_t> bytes = EncodeStatsRequest();
  EXPECT_TRUE(IsStatsRequest(bytes));
  EXPECT_TRUE(DecodeStatsRequest(bytes).ok());
  // A heat-map request is not a stats request.
  const WireRequest request = InlineRequest(21, 8, Metric::kLInf);
  EXPECT_FALSE(IsStatsRequest(EncodeRequest(request)));
}

TEST(WireStatsTest, RequestValidationIsStrict) {
  std::vector<uint8_t> bytes = EncodeStatsRequest();
  bytes[4] ^= 0xFF;  // version
  EXPECT_FALSE(DecodeStatsRequest(bytes).ok());
  bytes = EncodeStatsRequest();
  bytes.push_back(0);  // trailing byte
  EXPECT_FALSE(DecodeStatsRequest(bytes).ok());
  bytes = EncodeStatsRequest();
  bytes.pop_back();  // short
  EXPECT_FALSE(DecodeStatsRequest(bytes).ok());
}

TEST(WireStatsTest, ResponseRoundTripsEveryCounter) {
  WireStatsReply reply;
  reply.shards = 4;
  reply.requests = 1000;
  reply.ok = 990;
  reply.errors = 10;
  reply.sets_registered = 7;
  reply.deltas = 42;
  reply.delta_splices = 40;
  reply.sets_evicted = 13;
  reply.delta_dirty_columns = 512;
  reply.tile_requests = 81;
  reply.tile_fragments = 79;
  std::string error;
  const auto decoded = DecodeStatsResponse(EncodeStatsResponse(reply), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->shards, 4u);
  EXPECT_EQ(decoded->requests, 1000u);
  EXPECT_EQ(decoded->ok, 990u);
  EXPECT_EQ(decoded->errors, 10u);
  EXPECT_EQ(decoded->sets_registered, 7u);
  EXPECT_EQ(decoded->deltas, 42u);
  EXPECT_EQ(decoded->delta_splices, 40u);
  EXPECT_EQ(decoded->sets_evicted, 13u);
  EXPECT_EQ(decoded->delta_dirty_columns, 512u);
  EXPECT_EQ(decoded->tile_requests, 81u);
  EXPECT_EQ(decoded->tile_fragments, 79u);
}

TEST(WireStatsTest, ResponseValidationIsStrict) {
  WireStatsReply reply;
  reply.shards = 1;
  std::string error;
  std::vector<uint8_t> bytes = EncodeStatsResponse(reply);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeStatsResponse(bytes, &error).has_value());
  bytes = EncodeStatsResponse(reply);
  bytes[0] ^= 1;  // magic
  EXPECT_FALSE(DecodeStatsResponse(bytes, &error).has_value());
  // shards == 0 cannot describe any server.
  reply.shards = 0;
  EXPECT_FALSE(
      DecodeStatsResponse(EncodeStatsResponse(reply), &error).has_value());
}

TEST(WireStatusMappingTest, ErrorCodesRoundTrip) {
  for (const WireStatus status :
       {WireStatus::kMalformedRequest, WireStatus::kUnknownCircleSet,
        WireStatus::kServerError}) {
    EXPECT_EQ(ToWireStatus(FromWireStatus(status)), status);
  }
  EXPECT_EQ(FromWireStatus(WireStatus::kOk), StatusCode::kOk);
}

TEST(WireStatusMappingTest, TransportCodesCollapseToServerError) {
  for (const StatusCode code :
       {StatusCode::kUnavailable, StatusCode::kDataLoss,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded}) {
    EXPECT_EQ(ToWireStatus(code), WireStatus::kServerError);
  }
  // Oversized frames surface as a malformed request to the peer.
  EXPECT_EQ(ToWireStatus(StatusCode::kResourceExhausted),
            WireStatus::kMalformedRequest);
}

TEST(WireStatusMappingTest, ExitCodesAreDistinctPerStatusCode) {
  EXPECT_EQ(ExitCodeFor(Status::Ok()), 0);
  std::vector<int> codes;
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kInternal, StatusCode::kUnavailable, StatusCode::kDataLoss,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded}) {
    const int exit_code = ExitCodeFor(Status::Error(code, "x"));
    EXPECT_GT(exit_code, 2);  // 1 and 2 stay reserved for usage/generic
    for (const int seen : codes) EXPECT_NE(exit_code, seen);
    codes.push_back(exit_code);
  }
}

TEST(WireDecodeStatusTest, StatusOverloadsMirrorTheStringForms) {
  const WireRequest request = InlineRequest(22, 6, Metric::kL1);
  Status status;
  EXPECT_TRUE(DecodeRequest(EncodeRequest(request), &status).has_value());
  EXPECT_TRUE(status.ok());
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes[0] ^= 1;
  EXPECT_FALSE(DecodeRequest(bytes, &status).has_value());
  EXPECT_EQ(status.code, StatusCode::kInvalidArgument);
  EXPECT_FALSE(status.message.empty());
}

TEST(PeekRequestSetHashTest, ReadsTheHashWithoutDecoding) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(23, 12), Metric::kL2);
  for (const bool inline_circles : {true, false}) {
    const std::vector<uint8_t> bytes = EncodeRequest(
        MakeWireRequest(*set, kDomain, 16, 16, inline_circles));
    const auto hash = PeekRequestSetHash(bytes);
    ASSERT_TRUE(hash.has_value());
    EXPECT_EQ(*hash, set->content_hash());
  }
}

TEST(PeekRequestSetHashTest, RejectsNonRequestPayloads) {
  EXPECT_FALSE(PeekRequestSetHash(EncodeStatsRequest()).has_value());
  EXPECT_FALSE(PeekRequestSetHash({}).has_value());
  const std::vector<uint8_t> garbage(80, 0xAB);
  EXPECT_FALSE(PeekRequestSetHash(garbage).has_value());
}

// --- v4 additions: delta op, routing peek, scoped registration ------------

/// Mirrors CircleSetRegistry::ApplyDelta's edit semantics on a plain
/// vector, so tests can derive the expected content independently.
void ApplyEditsLocally(std::vector<NnCircle>& circles,
                       std::span<const CircleSetEdit> edits) {
  for (const CircleSetEdit& edit : edits) {
    switch (edit.kind) {
      case CircleSetEdit::Kind::kReplace:
        circles[edit.index] = edit.circle;
        break;
      case CircleSetEdit::Kind::kAppend:
        circles.push_back(edit.circle);
        break;
      case CircleSetEdit::Kind::kSwapRemove:
        circles[edit.index] = circles.back();
        circles.pop_back();
        break;
    }
  }
}

WireDeltaRequest MakeDelta(const std::vector<NnCircle>& base,
                           std::span<const CircleSetEdit> edits,
                           Metric metric, int size) {
  std::vector<NnCircle> derived = base;
  ApplyEditsLocally(derived, edits);
  WireDeltaRequest delta;
  delta.metric = metric;
  delta.base_hash = HashCircleSet(base, metric);
  delta.new_hash = HashCircleSet(derived, metric);
  delta.edits.assign(edits.begin(), edits.end());
  delta.domain = kDomain;
  delta.width = size;
  delta.height = size;
  return delta;
}

TEST(WireDeltaTest, RoundTripPreservesEveryEditKind) {
  WireDeltaRequest request;
  request.metric = Metric::kL2;
  request.base_hash = 0x0123456789ABCDEFull;
  request.new_hash = 0xFEDCBA9876543210ull;
  request.domain = kDomain;
  request.width = 40;
  request.height = 24;
  request.edits.push_back(CircleSetEdit{CircleSetEdit::Kind::kReplace, 3,
                                        NnCircle{{0.25, 0.75}, 0.125, 9}});
  request.edits.push_back(CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                                        NnCircle{{0.5, 0.5}, 0.0625, 10}});
  request.edits.push_back(
      CircleSetEdit{CircleSetEdit::Kind::kSwapRemove, 1, NnCircle{}});

  std::string error;
  const auto decoded = DecodeDeltaRequest(EncodeDeltaRequest(request), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->metric, request.metric);
  EXPECT_EQ(decoded->base_hash, request.base_hash);
  EXPECT_EQ(decoded->new_hash, request.new_hash);
  EXPECT_EQ(decoded->domain, request.domain);
  EXPECT_EQ(decoded->width, request.width);
  EXPECT_EQ(decoded->height, request.height);
  ASSERT_EQ(decoded->edits.size(), 3u);
  EXPECT_EQ(decoded->edits[0].kind, CircleSetEdit::Kind::kReplace);
  EXPECT_EQ(decoded->edits[0].index, 3u);
  EXPECT_EQ(decoded->edits[0].circle.center, request.edits[0].circle.center);
  EXPECT_EQ(decoded->edits[0].circle.radius, request.edits[0].circle.radius);
  EXPECT_EQ(decoded->edits[0].circle.client, request.edits[0].circle.client);
  EXPECT_EQ(decoded->edits[1].kind, CircleSetEdit::Kind::kAppend);
  EXPECT_EQ(decoded->edits[1].circle.center, request.edits[1].circle.center);
  EXPECT_EQ(decoded->edits[1].circle.radius, request.edits[1].circle.radius);
  EXPECT_EQ(decoded->edits[1].circle.client, request.edits[1].circle.client);
  EXPECT_EQ(decoded->edits[2].kind, CircleSetEdit::Kind::kSwapRemove);
  EXPECT_EQ(decoded->edits[2].index, 1u);
}

TEST(WireDeltaTest, IsDeltaRequestDistinguishesFrameKinds) {
  const std::vector<NnCircle> base = MakeCircles(40, 6);
  const std::vector<CircleSetEdit> edits = {
      CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                    NnCircle{{0.3, 0.3}, 0.05, 6}}};
  const auto delta = MakeDelta(base, edits, Metric::kLInf, 8);
  EXPECT_TRUE(IsDeltaRequest(EncodeDeltaRequest(delta)));
  EXPECT_FALSE(IsDeltaRequest(EncodeRequest(InlineRequest(40, 6,
                                                          Metric::kLInf))));
  EXPECT_FALSE(IsDeltaRequest(EncodeStatsRequest()));
  EXPECT_FALSE(IsDeltaRequest({}));
}

TEST(WireDeltaTest, EveryTruncationDecodesToAnErrorNotACrash) {
  const std::vector<NnCircle> base = MakeCircles(41, 5);
  const std::vector<CircleSetEdit> edits = {
      CircleSetEdit{CircleSetEdit::Kind::kReplace, 2,
                    NnCircle{{0.6, 0.4}, 0.07, 2}},
      CircleSetEdit{CircleSetEdit::Kind::kSwapRemove, 0, NnCircle{}},
      CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                    NnCircle{{0.2, 0.8}, 0.09, 7}}};
  const std::vector<uint8_t> bytes =
      EncodeDeltaRequest(MakeDelta(base, edits, Metric::kL2, 16));
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    EXPECT_FALSE(
        DecodeDeltaRequest(std::span(bytes.data(), len), &error).has_value())
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(WireDeltaTest, CorruptedHeaderFieldsAreRejected) {
  const std::vector<NnCircle> base = MakeCircles(42, 4);
  const std::vector<CircleSetEdit> edits = {
      CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                    NnCircle{{0.1, 0.9}, 0.04, 4}}};
  const std::vector<uint8_t> good =
      EncodeDeltaRequest(MakeDelta(base, edits, Metric::kLInf, 12));
  std::string error;
  ASSERT_TRUE(DecodeDeltaRequest(good, &error).has_value()) << error;

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeDeltaRequest(bad_magic, &error).has_value());

  auto bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_FALSE(DecodeDeltaRequest(bad_version, &error).has_value());

  auto bad_metric = good;
  bad_metric[8] = 7;
  EXPECT_FALSE(DecodeDeltaRequest(bad_metric, &error).has_value());

  auto bad_flags = good;
  bad_flags[9] |= 0x80;
  EXPECT_FALSE(DecodeDeltaRequest(bad_flags, &error).has_value());

  auto bad_reserved = good;
  bad_reserved[10] = 1;
  EXPECT_FALSE(DecodeDeltaRequest(bad_reserved, &error).has_value());

  auto bad_width = good;
  bad_width[12] = 0;
  bad_width[13] = 0;
  bad_width[14] = 0;
  bad_width[15] = 0;
  EXPECT_FALSE(DecodeDeltaRequest(bad_width, &error).has_value());

  // First edit's op byte sits right after the fixed header.
  auto bad_edit_kind = good;
  bad_edit_kind[76] = 7;
  EXPECT_FALSE(DecodeDeltaRequest(bad_edit_kind, &error).has_value());

  auto trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeDeltaRequest(trailing, &error).has_value());
}

TEST(PeekRouteInfoTest, PlainRequestRoutesBySetHash) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(43, 9), Metric::kL2);
  for (const bool inline_circles : {true, false}) {
    const auto route = PeekRouteInfo(
        EncodeRequest(MakeWireRequest(*set, kDomain, 16, 16, inline_circles)));
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->route_hash, set->content_hash());
    EXPECT_FALSE(route->is_delta);
  }
}

TEST(PeekRouteInfoTest, DeltaRoutesByBaseHashAndExposesDerived) {
  const std::vector<NnCircle> base = MakeCircles(44, 7);
  const std::vector<CircleSetEdit> edits = {
      CircleSetEdit{CircleSetEdit::Kind::kReplace, 1,
                    NnCircle{{0.45, 0.55}, 0.06, 1}}};
  const auto delta = MakeDelta(base, edits, Metric::kLInf, 10);
  const auto route = PeekRouteInfo(EncodeDeltaRequest(delta));
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->is_delta);
  EXPECT_EQ(route->route_hash, delta.base_hash);
  EXPECT_EQ(route->derived_hash, delta.new_hash);
  EXPECT_NE(route->route_hash, route->derived_hash);
}

TEST(PeekRouteInfoTest, RejectsNonRequestPayloads) {
  EXPECT_FALSE(PeekRouteInfo(EncodeStatsRequest()).has_value());
  EXPECT_FALSE(PeekRouteInfo({}).has_value());
  const std::vector<uint8_t> garbage(80, 0xAB);
  EXPECT_FALSE(PeekRouteInfo(garbage).has_value());
}

// --- v6 additions: tile fragment op ---------------------------------------

WireTileRequest TileRequest(const CircleSetSnapshot& set, bool inline_circles,
                            int rows, int cols, int tile_id, int size = 24) {
  return MakeWireTileRequest(set, kDomain, size, size, inline_circles, rows,
                             cols, tile_id);
}

TEST(WireTileRequestTest, InlineRoundTripPreservesEveryField) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(81, 25), Metric::kL2);
  const WireTileRequest request =
      TileRequest(*set, /*inline_circles=*/true, 3, 4, 7);
  const std::vector<uint8_t> bytes = EncodeTileRequest(request);
  EXPECT_TRUE(IsTileRequest(bytes));
  EXPECT_FALSE(IsTileRequest(EncodeRequest(InlineRequest(81, 5, Metric::kL2))));
  std::string error;
  const auto decoded = DecodeTileRequest(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->metric, request.metric);
  EXPECT_EQ(decoded->set_hash, request.set_hash);
  EXPECT_TRUE(decoded->inline_circles);
  EXPECT_EQ(decoded->circles.size(), request.circles.size());
  EXPECT_EQ(decoded->domain, request.domain);
  EXPECT_EQ(decoded->width, request.width);
  EXPECT_EQ(decoded->height, request.height);
  EXPECT_EQ(decoded->tile_rows, 3);
  EXPECT_EQ(decoded->tile_cols, 4);
  EXPECT_EQ(decoded->tile_id, 7);
}

TEST(WireTileRequestTest, ByReferenceCarriesHeaderOnly) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(82, 10), Metric::kL1);
  const std::vector<uint8_t> bytes =
      EncodeTileRequest(TileRequest(*set, /*inline_circles=*/false, 2, 2, 3));
  EXPECT_EQ(bytes.size(), 80u);  // plain 68-byte header + three i32s
  std::string error;
  const auto decoded = DecodeTileRequest(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_FALSE(decoded->inline_circles);
  EXPECT_TRUE(decoded->circles.empty());
  EXPECT_EQ(decoded->set_hash, set->content_hash());
}

TEST(WireTileRequestTest, TileGridValidationIsStrict) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(83, 6), Metric::kLInf);
  const WireTileRequest good = TileRequest(*set, /*inline_circles=*/true, 2,
                                           3, 5);
  std::string error;
  ASSERT_TRUE(DecodeTileRequest(EncodeTileRequest(good), &error).has_value());

  // Degenerate and oversized grids, and ids outside the grid, are all
  // refused even when the rest of the frame is pristine.
  WireTileRequest bad = good;
  bad.tile_rows = 0;
  EXPECT_FALSE(DecodeTileRequest(EncodeTileRequest(bad), &error).has_value());
  bad = good;
  bad.tile_cols = kMaxWireTileGridSide + 1;
  EXPECT_FALSE(DecodeTileRequest(EncodeTileRequest(bad), &error).has_value());
  bad = good;
  bad.tile_id = 6;  // == rows * cols, one past the last tile
  EXPECT_FALSE(DecodeTileRequest(EncodeTileRequest(bad), &error).has_value());
  bad = good;
  bad.tile_id = -1;
  EXPECT_FALSE(DecodeTileRequest(EncodeTileRequest(bad), &error).has_value());
}

TEST(WireTileRequestTest, EveryTruncationDecodesToAnErrorNotACrash) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(84, 8), Metric::kL2);
  const std::vector<uint8_t> bytes =
      EncodeTileRequest(TileRequest(*set, /*inline_circles=*/true, 2, 2, 1));
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string error;
    EXPECT_FALSE(
        DecodeTileRequest(std::span(bytes.data(), len), &error).has_value())
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
  auto trailing = bytes;
  trailing.push_back(0);
  std::string error;
  EXPECT_FALSE(DecodeTileRequest(trailing, &error).has_value());
}

TEST(PeekRouteInfoTest, TileRequestRoutesBySetHashAndExposesTheTile) {
  const auto set = CircleSetSnapshot::Make(MakeCircles(85, 9), Metric::kL2);
  for (const bool inline_circles : {true, false}) {
    const auto route = PeekRouteInfo(
        EncodeTileRequest(TileRequest(*set, inline_circles, 3, 3, 5)));
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->route_hash, set->content_hash());
    EXPECT_TRUE(route->is_tile);
    EXPECT_FALSE(route->is_delta);
    EXPECT_EQ(route->tile_id, 5u);
  }
}

TEST(ServeWireStreamTest, TileFragmentsStitchBitIdenticallyThroughTheServer) {
  // All six tiles of a 2x3 decomposition served as wire frames, stitched
  // client-side — the reassembled raster must equal a direct Execute, and
  // the serve counters must attribute every frame to the tile op.
  const auto set = CircleSetSnapshot::Make(MakeCircles(86, 30), Metric::kL2);
  const int size = 27;
  constexpr int kRows = 2;
  constexpr int kCols = 3;
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  for (int t = 0; t < kRows * kCols; ++t) {
    ASSERT_TRUE(WriteFrame(
        in, EncodeTileRequest(MakeWireTileRequest(
                *set, kDomain, size, size, /*include_circles=*/t == 0, kRows,
                kCols, t))));
  }
  std::rewind(in);

  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  WireServeStats stats;
  std::string error;
  ASSERT_TRUE(ServeWireStream(in, out, engine, &stats, &error)) << error;
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.tile_requests, 6u);
  EXPECT_EQ(stats.tile_fragments, 6u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.sets_registered, 1u);

  std::rewind(out);
  const std::vector<TileWindow> windows =
      TileWindows(kDomain, size, size, kRows, kCols);
  HeatmapGrid stitched(size, size, kDomain, 0.0);
  for (int t = 0; t < kRows * kCols; ++t) {
    const auto frame = ReadFrame(out, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto decoded = DecodeResponse(*frame, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
    ASSERT_EQ(decoded->response->grid.width(), windows[t].width());
    ASSERT_EQ(decoded->response->grid.height(), windows[t].height());
    TilePlan::StitchFragment(windows[t], decoded->response->grid, &stitched);
  }
  SizeInfluence reference_measure;
  HeatmapEngine reference(reference_measure, options);
  const CircleSetHandle handle =
      reference.registry().Register(set->circles(), set->metric());
  const HeatmapResponse direct =
      reference.Execute(HeatmapRequestV2{handle, kDomain, size, size});
  EXPECT_EQ(stitched.values(), direct.grid.values());
  std::fclose(in);
  std::fclose(out);
}

TEST(ServeWireStreamTest, ChainedDeltasSpliceAndMatchFromScratch) {
  const Metric metric = Metric::kLInf;
  const int size = 20;
  const std::vector<NnCircle> base = MakeCircles(45, 24);

  const std::vector<CircleSetEdit> edits1 = {
      CircleSetEdit{CircleSetEdit::Kind::kReplace, 5,
                    NnCircle{{0.35, 0.65}, 0.09, 5}},
      CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                    NnCircle{{0.85, 0.15}, 0.05, 24}}};
  std::vector<NnCircle> tick1 = base;
  ApplyEditsLocally(tick1, edits1);
  const std::vector<CircleSetEdit> edits2 = {
      CircleSetEdit{CircleSetEdit::Kind::kSwapRemove, 2, NnCircle{}},
      CircleSetEdit{CircleSetEdit::Kind::kReplace, 0,
                    NnCircle{{0.15, 0.85}, 0.11, 0}}};
  std::vector<NnCircle> tick2 = tick1;
  ApplyEditsLocally(tick2, edits2);

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  const auto base_set = CircleSetSnapshot::Make(base, metric);
  ASSERT_TRUE(WriteFrame(
      in, EncodeRequest(MakeWireRequest(*base_set, kDomain, size, size,
                                        /*include_circles=*/true))));
  ASSERT_TRUE(
      WriteFrame(in, EncodeDeltaRequest(MakeDelta(base, edits1, metric,
                                                  size))));
  ASSERT_TRUE(
      WriteFrame(in, EncodeDeltaRequest(MakeDelta(tick1, edits2, metric,
                                                  size))));
  ASSERT_TRUE(WriteFrame(in, EncodeStatsRequest()));
  std::rewind(in);

  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 8 << 20;  // the base raster must be spliceable
  HeatmapEngine engine(measure, options);
  WireServeStats stats;
  std::string error;
  ASSERT_TRUE(ServeWireStream(in, out, engine, &stats, &error)) << error;
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.sets_registered, 1u);
  EXPECT_EQ(stats.deltas, 2u);
  EXPECT_EQ(stats.delta_splices, 2u);
  // Each splice recomputed a nonempty strict subset of the columns.
  EXPECT_GT(stats.delta_dirty_columns, 0u);
  EXPECT_LT(stats.delta_dirty_columns,
            static_cast<uint64_t>(size) * stats.delta_splices);

  std::rewind(out);
  SizeInfluence reference_measure;
  HeatmapEngine reference(reference_measure, options);
  const std::vector<NnCircle>* ticks[3] = {&base, &tick1, &tick2};
  for (int i = 0; i < 3; ++i) {
    const auto frame = ReadFrame(out, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const auto decoded = DecodeResponse(*frame, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    ASSERT_EQ(decoded->status, WireStatus::kOk) << decoded->error;
    // The from-scratch reference: a cold Execute over the tick's circles.
    const HeatmapResponse direct = reference.Execute(
        HeatmapRequest{*ticks[i], kDomain, size, size, metric});
    EXPECT_EQ(decoded->response->grid.values(), direct.grid.values())
        << "tick " << i;
  }
  const auto stats_frame = ReadFrame(out, &error);
  ASSERT_TRUE(stats_frame.has_value()) << error;
  const auto stats_reply = DecodeStatsResponse(*stats_frame, &error);
  ASSERT_TRUE(stats_reply.has_value()) << error;
  EXPECT_EQ(stats_reply->shards, 1u);
  EXPECT_EQ(stats_reply->deltas, 2u);
  EXPECT_EQ(stats_reply->delta_splices, 2u);
  EXPECT_EQ(stats_reply->sets_evicted, 0u);
  EXPECT_EQ(stats_reply->delta_dirty_columns, stats.delta_dirty_columns);
  std::fclose(in);
  std::fclose(out);
}

TEST(WireServerTest, DeltaFromUnknownBaseIsRefused) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  WireServer server(engine);
  const std::vector<NnCircle> base = MakeCircles(46, 5);
  const std::vector<CircleSetEdit> edits = {
      CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                    NnCircle{{0.5, 0.5}, 0.05, 5}}};
  const auto reply = server.HandleFrame(
      EncodeDeltaRequest(MakeDelta(base, edits, Metric::kL2, 8)));
  std::string error;
  const auto decoded = DecodeResponse(reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kUnknownCircleSet);
  EXPECT_EQ(server.stats().errors, 1u);
  EXPECT_EQ(server.stats().deltas, 0u);
}

TEST(WireServerTest, CollidedHashIsRefusedOnTheWire) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  WireServer server(engine);
  // File unrelated content under set_b's hash: the bucket matches, the
  // content does not — exactly what a 64-bit collision looks like.
  const auto set_b = CircleSetSnapshot::Make(MakeCircles(48, 6), Metric::kL2);
  engine.registry().RegisterWithHashForTesting(MakeCircles(47, 6), Metric::kL2,
                                               set_b->content_hash());
  std::string error;

  const auto by_ref_reply = server.HandleFrame(EncodeRequest(
      MakeWireRequest(*set_b, kDomain, 8, 8, /*include_circles=*/false)));
  const auto by_ref = DecodeResponse(by_ref_reply, &error);
  ASSERT_TRUE(by_ref.has_value()) << error;
  EXPECT_EQ(by_ref->status, WireStatus::kUnknownCircleSet);
  EXPECT_NE(by_ref->error.find("collision"), std::string::npos);

  WireDeltaRequest delta;
  delta.metric = Metric::kL2;
  delta.base_hash = set_b->content_hash();
  delta.new_hash = 1;
  delta.edits.push_back(CircleSetEdit{CircleSetEdit::Kind::kAppend, 0,
                                      NnCircle{{0.4, 0.6}, 0.03, 6}});
  delta.domain = kDomain;
  delta.width = 8;
  delta.height = 8;
  const auto delta_reply = server.HandleFrame(EncodeDeltaRequest(delta));
  const auto decoded = DecodeResponse(delta_reply, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status, WireStatus::kUnknownCircleSet);
}

TEST(WireServerTest, ScopedRegistrationsReleaseWhenTheScopeDies) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  HeatmapEngine engine(measure, options);
  WireServer server(engine);
  const std::vector<NnCircle> base = MakeCircles(49, 8);
  const auto base_set = CircleSetSnapshot::Make(base, Metric::kLInf);
  const std::vector<CircleSetEdit> edits = {
      CircleSetEdit{CircleSetEdit::Kind::kReplace, 4,
                    NnCircle{{0.7, 0.3}, 0.08, 4}}};
  std::string error;
  {
    RegistrationScope scope(&engine.registry());
    const auto inline_reply = server.HandleFrame(
        EncodeRequest(MakeWireRequest(*base_set, kDomain, 8, 8, true)),
        &scope);
    ASSERT_EQ(DecodeResponse(inline_reply, &error)->status, WireStatus::kOk);
    const auto delta_reply = server.HandleFrame(
        EncodeDeltaRequest(MakeDelta(base, edits, Metric::kLInf, 8)), &scope);
    ASSERT_EQ(DecodeResponse(delta_reply, &error)->status, WireStatus::kOk);
    EXPECT_EQ(engine.registry().size(), 2u);  // base + derived, both tracked
  }
  // No retention budget on this registry: releasing the scope's handles
  // erases the entries outright, as a disconnect would.
  EXPECT_EQ(engine.registry().size(), 0u);
  const auto by_ref_reply = server.HandleFrame(EncodeRequest(
      MakeWireRequest(*base_set, kDomain, 8, 8, /*include_circles=*/false)));
  EXPECT_EQ(DecodeResponse(by_ref_reply, &error)->status,
            WireStatus::kUnknownCircleSet);
}

TEST(WireServerTest, EvictedHandleKeepsPinnedSnapshotAlive) {
  SizeInfluence measure;
  HeatmapEngineOptions options;
  options.num_threads = 1;
  CircleSetRegistryOptions registry_options;
  registry_options.max_unpinned_entries = 1;
  options.registry = std::make_shared<CircleSetRegistry>(registry_options);
  HeatmapEngine engine(measure, options);
  WireServer server(engine);
  const auto set = CircleSetSnapshot::Make(MakeCircles(50, 10), Metric::kLInf);
  std::string error;

  std::shared_ptr<const CircleSetSnapshot> pinned;
  {
    RegistrationScope scope(&engine.registry());
    const auto reply = server.HandleFrame(
        EncodeRequest(MakeWireRequest(*set, kDomain, 12, 12, true)), &scope);
    ASSERT_EQ(DecodeResponse(reply, &error)->status, WireStatus::kOk);
    // A request mid-flight holds the snapshot, not the registry entry.
    pinned = engine.registry().Resolve(
        engine.registry().FindByHash(set->content_hash()));
    ASSERT_NE(pinned, nullptr);
  }
  // Unpinned but retained (budget 1): still servable by hash.
  const auto retained_reply = server.HandleFrame(EncodeRequest(
      MakeWireRequest(*set, kDomain, 12, 12, /*include_circles=*/false)));
  EXPECT_EQ(DecodeResponse(retained_reply, &error)->status, WireStatus::kOk);

  // A second unpinned set overflows the budget and evicts the LRU entry.
  const CircleSetHandle filler = engine.registry().Register(
      MakeCircles(51, 3), Metric::kLInf);
  ASSERT_TRUE(engine.registry().Release(filler));
  EXPECT_GE(engine.registry().total_evicted(), 1u);

  // The wire now answers kUnknownCircleSet — while the pinned snapshot
  // (our in-flight request) is still fully intact.
  const auto evicted_reply = server.HandleFrame(EncodeRequest(
      MakeWireRequest(*set, kDomain, 12, 12, /*include_circles=*/false)));
  EXPECT_EQ(DecodeResponse(evicted_reply, &error)->status,
            WireStatus::kUnknownCircleSet);
  EXPECT_EQ(pinned->circles().size(), 10u);
  EXPECT_EQ(pinned->content_hash(), set->content_hash());
}

}  // namespace
}  // namespace rnnhm
