#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/brute_force.h"
#include "core/crest.h"
#include "data/generators.h"
#include "heatmap/heatmap.h"
#include "heatmap/influence.h"
#include "nn/nn_circle_builder.h"

namespace rnnhm {
namespace {

std::vector<NnCircle> RandomCircles(int n, Rng& rng, double max_r = 0.15) {
  std::vector<NnCircle> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NnCircle{{rng.Uniform(0, 1), rng.Uniform(0, 1)},
                           rng.Uniform(0.01, max_r), i});
  }
  return out;
}

// Distinct non-empty RNN sets labeled by a run.
std::map<std::vector<int32_t>, double> DistinctNonEmpty(
    const DistinctSetSink& sink) {
  std::map<std::vector<int32_t>, double> out;
  for (const auto& [set, influence] : sink.sets()) {
    if (!set.empty()) out[set] = influence;
  }
  return out;
}

TEST(CrestTest, SingleSquare) {
  const std::vector<NnCircle> circles{{{0.5, 0.5}, 0.25, 0}};
  SizeInfluence measure;
  CollectingSink sink;
  const CrestStats stats = RunCrest(circles, measure, &sink);
  ASSERT_EQ(sink.labels().size(), 1u);
  EXPECT_EQ(sink.labels()[0].rnn, (std::vector<int32_t>{0}));
  EXPECT_DOUBLE_EQ(sink.labels()[0].influence, 1.0);
  EXPECT_EQ(stats.num_events, 2u);
  EXPECT_EQ(stats.num_labelings, 1u);
}

TEST(CrestTest, TwoDisjointSquares) {
  const std::vector<NnCircle> circles{{{0.2, 0.2}, 0.1, 0},
                                      {{0.8, 0.8}, 0.1, 1}};
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrest(circles, measure, &sink);
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_TRUE(sets.count({0}));
  EXPECT_TRUE(sets.count({1}));
}

TEST(CrestTest, TwoOverlappingSquares) {
  const std::vector<NnCircle> circles{{{0.4, 0.5}, 0.2, 0},
                                      {{0.6, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrest(circles, measure, &sink);
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_TRUE(sets.count({0}));
  EXPECT_TRUE(sets.count({1}));
  EXPECT_TRUE(sets.count({0, 1}));
  EXPECT_DOUBLE_EQ(sets.at({0, 1}), 2.0);
}

TEST(CrestTest, NestedSquares) {
  const std::vector<NnCircle> circles{{{0.5, 0.5}, 0.4, 0},
                                      {{0.5, 0.5}, 0.2, 1},
                                      {{0.5, 0.5}, 0.1, 2}};
  SizeInfluence measure;
  DistinctSetSink sink;
  RunCrest(circles, measure, &sink);
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_TRUE(sets.count({0}));
  EXPECT_TRUE(sets.count({0, 1}));
  EXPECT_TRUE(sets.count({0, 1, 2}));
}

TEST(CrestTest, ZeroRadiusCirclesAreSkipped) {
  const std::vector<NnCircle> circles{{{0.5, 0.5}, 0.0, 0},
                                      {{0.5, 0.5}, 0.2, 1}};
  SizeInfluence measure;
  DistinctSetSink sink;
  const CrestStats stats = RunCrest(circles, measure, &sink);
  EXPECT_EQ(stats.num_skipped_circles, 1u);
  EXPECT_EQ(stats.num_circles, 1u);
  const auto sets = DistinctNonEmpty(sink);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets.count({1}));
}

TEST(CrestTest, EmptyInput) {
  SizeInfluence measure;
  CollectingSink sink;
  const CrestStats stats = RunCrest({}, measure, &sink);
  EXPECT_EQ(stats.num_events, 0u);
  EXPECT_TRUE(sink.labels().empty());
}

// ---------------------------------------------------------------------------
// Property tests: CREST agrees with the brute-force oracle everywhere.
// ---------------------------------------------------------------------------

struct CrestCase {
  int n;
  double max_r;
  uint64_t seed;
};

class CrestProperty : public ::testing::TestWithParam<CrestCase> {};

TEST_P(CrestProperty, HeatAtRandomPointsMatchesBruteForce) {
  const CrestCase c = GetParam();
  Rng rng(c.seed);
  const std::vector<NnCircle> circles = RandomCircles(c.n, rng, c.max_r);
  SizeInfluence measure;
  const Rect domain{{-0.2, -0.2}, {1.2, 1.2}};
  const HeatmapGrid grid =
      BuildHeatmapLInf(circles, measure, domain, 160, 160);
  int checked = 0;
  for (int i = 0; i < grid.width(); i += 7) {
    for (int j = 0; j < grid.height(); j += 7) {
      const Point p = grid.PixelCenter(i, j);
      const auto rnn = BruteForceRnnSet(p, circles, Metric::kLInf);
      ASSERT_DOUBLE_EQ(grid.At(i, j), static_cast<double>(rnn.size()))
          << "pixel " << i << "," << j;
      ++checked;
    }
  }
  EXPECT_GT(checked, 400);
}

TEST_P(CrestProperty, CrestAndCrestAProduceIdenticalDistinctSets) {
  const CrestCase c = GetParam();
  Rng rng(c.seed + 1);
  const std::vector<NnCircle> circles = RandomCircles(c.n, rng, c.max_r);
  SizeInfluence measure;
  DistinctSetSink full, variant_a;
  CrestOptions options_a;
  options_a.use_changed_intervals = false;
  const CrestStats stats_full = RunCrest(circles, measure, &full);
  const CrestStats stats_a = RunCrest(circles, measure, &variant_a, options_a);
  EXPECT_EQ(DistinctNonEmpty(full), DistinctNonEmpty(variant_a));
  // The changed-interval optimization can only reduce labelings.
  EXPECT_LE(stats_full.num_labelings, stats_a.num_labelings);
}

TEST_P(CrestProperty, LabelingCountIsWithinLemma3Bounds) {
  const CrestCase c = GetParam();
  Rng rng(c.seed + 2);
  const std::vector<NnCircle> circles = RandomCircles(c.n, rng, c.max_r);
  SizeInfluence measure;
  CountingSink counter;
  const CrestStats stats = RunCrest(circles, measure, &counter);
  EXPECT_EQ(counter.count(), stats.num_labelings);
  // Very weak but universal: at least one labeling per circle "lens", and
  // k <= 14 r <= 14 * (quadratic bound on regions).
  EXPECT_GE(stats.num_labelings, static_cast<size_t>(c.n));
  const size_t r_max = static_cast<size_t>(c.n) * c.n + c.n + 2;
  EXPECT_LE(stats.num_labelings, 14 * r_max);
}

TEST_P(CrestProperty, EveryLabelMatchesOracleAtRectCenter) {
  // For every labeled subregion with positive area, the RNN set computed by
  // the sweep must equal the oracle's set at the subregion center.
  const CrestCase c = GetParam();
  Rng rng(c.seed + 3);
  const std::vector<NnCircle> circles = RandomCircles(c.n, rng, c.max_r);
  SizeInfluence measure;
  CollectingSink sink;
  RunCrest(circles, measure, &sink);
  int checked = 0;
  for (const auto& label : sink.labels()) {
    const Rect& r = label.subregion;
    if (!(r.lo.x < r.hi.x && r.lo.y < r.hi.y)) continue;
    const Point center = r.Center();
    const auto want = BruteForceRnnSet(center, circles, Metric::kLInf);
    ASSERT_EQ(label.rnn, want)
        << "subregion center " << center.x << "," << center.y;
    ++checked;
  }
  EXPECT_GT(checked, c.n / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrestProperty,
    ::testing::Values(CrestCase{3, 0.3, 70}, CrestCase{10, 0.25, 71},
                      CrestCase{30, 0.2, 72}, CrestCase{100, 0.12, 73},
                      CrestCase{300, 0.08, 74}, CrestCase{100, 0.5, 75},
                      CrestCase{50, 0.02, 76}),
    [](const ::testing::TestParamInfo<CrestCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST_P(CrestProperty, StatusBackendsProduceIdenticalResults) {
  const CrestCase c = GetParam();
  Rng rng(c.seed + 4);
  const std::vector<NnCircle> circles = RandomCircles(c.n, rng, c.max_r);
  SizeInfluence measure;
  DistinctSetSink skiplist_sink, multimap_sink;
  CrestOptions multimap_options;
  multimap_options.status_backend = StatusBackend::kStdMultimap;
  const CrestStats s1 = RunCrest(circles, measure, &skiplist_sink);
  const CrestStats s2 =
      RunCrest(circles, measure, &multimap_sink, multimap_options);
  EXPECT_EQ(skiplist_sink.sets(), multimap_sink.sets());
  EXPECT_EQ(s1.num_labelings, s2.num_labelings);
  EXPECT_EQ(s1.num_events, s2.num_events);
}

// ---------------------------------------------------------------------------
// Structural results from the paper.
// ---------------------------------------------------------------------------

TEST(CrestStructuralTest, WorstCaseArrangementLabelingBounds) {
  // Fig. 8: r = n^2 - n + 2 regions; Lemma 3 guarantees r <= k <= 14 r
  // (k counts the exterior face never being labeled, so k >= r - 1).
  for (const int n : {4, 8, 16, 32}) {
    const auto circles = MakeWorstCaseSquares(n);
    SizeInfluence measure;
    CountingSink counter;
    const CrestStats stats = RunCrest(circles, measure, &counter);
    const size_t r = static_cast<size_t>(n) * n - n + 2;
    EXPECT_GE(stats.num_labelings, r - 1) << "n=" << n;
    EXPECT_LE(stats.num_labelings, 14 * r) << "n=" << n;
  }
}

TEST(CrestStructuralTest, ElementDistinctnessReduction) {
  // Section VI-C: with distinct inputs the arrangement of n-1 nested squares
  // has exactly n regions, i.e. n-1 distinct non-empty RNN sets; duplicates
  // collapse regions.
  SizeInfluence measure;
  {
    const std::vector<double> distinct{0.0, 1.0, 2.5, 3.0, 7.0};
    DistinctSetSink sink;
    RunCrest(MakeElementDistinctnessSquares(distinct), measure, &sink);
    EXPECT_EQ(DistinctNonEmpty(sink).size(), distinct.size() - 1);
  }
  {
    const std::vector<double> dup{0.0, 1.0, 2.5, 1.0, 7.0};  // one duplicate
    DistinctSetSink sink;
    RunCrest(MakeElementDistinctnessSquares(dup), measure, &sink);
    // 4 distinct values -> 3 distinct non-empty sets... but the duplicated
    // squares coincide, producing the same region set; expect 3.
    EXPECT_EQ(DistinctNonEmpty(sink).size(), 3u);
  }
}

TEST(CrestStructuralTest, MonochromaticRnnSetsAreSmall) {
  // Korn et al.: monochromatic RNN sets are O(1)-sized (at most 6 under L2;
  // a small constant under Linf as well). Check lambda stays tiny.
  Rng rng(80);
  std::vector<Point> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto circles = BuildMonochromaticNnCircles(points, Metric::kLInf);
  SizeInfluence measure;
  MaxInfluenceSink sink;
  RunCrest(circles, measure, &sink);
  ASSERT_TRUE(sink.HasResult());
  EXPECT_LE(sink.max_influence(), 8.0);
  EXPECT_GE(sink.max_influence(), 1.0);
}

// ---------------------------------------------------------------------------
// Generic measures flow through the sweep unchanged.
// ---------------------------------------------------------------------------

TEST(CrestMeasureTest, WeightedMeasureMatchesOracle) {
  Rng rng(81);
  const std::vector<NnCircle> circles = RandomCircles(60, rng);
  std::vector<double> weights;
  for (int i = 0; i < 60; ++i) weights.push_back(rng.Uniform(0.5, 2.0));
  WeightedInfluence measure(weights);
  const Rect domain{{-0.2, -0.2}, {1.2, 1.2}};
  const HeatmapGrid grid = BuildHeatmapLInf(circles, measure, domain, 96, 96);
  for (int i = 0; i < 96; i += 5) {
    for (int j = 0; j < 96; j += 5) {
      const Point p = grid.PixelCenter(i, j);
      const auto rnn = BruteForceRnnSet(p, circles, Metric::kLInf);
      double want = 0.0;
      for (const int32_t cl : rnn) want += weights[cl];
      ASSERT_NEAR(grid.At(i, j), want, 1e-9);
    }
  }
}

TEST(CrestMeasureTest, MaxInfluenceWitnessIsConsistent) {
  Rng rng(82);
  const std::vector<NnCircle> circles = RandomCircles(120, rng);
  SizeInfluence measure;
  MaxInfluenceSink sink;
  RunCrest(circles, measure, &sink);
  ASSERT_TRUE(sink.HasResult());
  // The witness rectangle's center must actually attain the max influence.
  const Point center = sink.witness().Center();
  const auto rnn = BruteForceRnnSet(center, circles, Metric::kLInf);
  EXPECT_EQ(static_cast<double>(rnn.size()), sink.max_influence());
  EXPECT_EQ(rnn, sink.witness_rnn());
}

// ---------------------------------------------------------------------------
// L1 support via rotation.
// ---------------------------------------------------------------------------

TEST(CrestL1Test, RotatedOracleMatchesDirectL1Oracle) {
  Rng rng(83);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 150; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 15; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto l1_circles = BuildNnCircles(clients, facilities, Metric::kL1);
  const auto rot_circles = RotateCirclesToLInf(l1_circles);
  for (int q = 0; q < 400; ++q) {
    const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const auto direct = BruteForceRnnSet(p, l1_circles, Metric::kL1);
    const auto rotated =
        BruteForceRnnSet(RotateToLInf(p), rot_circles, Metric::kLInf);
    ASSERT_EQ(direct, rotated);
  }
}

TEST(CrestL1Test, L1HeatmapMatchesBruteForceAlmostEverywhere) {
  Rng rng(84);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 80; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 8; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  SizeInfluence measure;
  const Rect domain{{0, 0}, {1, 1}};
  const HeatmapGrid grid =
      BuildHeatmapL1(clients, facilities, measure, domain, 128, 128, 3.0);
  const auto circles = BuildNnCircles(clients, facilities, Metric::kL1);
  int mismatches = 0;
  int total = 0;
  for (int i = 0; i < 128; i += 3) {
    for (int j = 0; j < 128; j += 3) {
      const Point p = grid.PixelCenter(i, j);
      const auto rnn = BruteForceRnnSet(p, circles, Metric::kL1);
      mismatches += grid.At(i, j) != static_cast<double>(rnn.size());
      ++total;
    }
  }
  // Resampling through the rotated frame is exact except within one rotated
  // pixel of region boundaries.
  EXPECT_LT(mismatches, total / 20) << mismatches << "/" << total;
}

TEST(CrestL1Test, RunCrestL1DistinctSetsMatchRotatedRun) {
  Rng rng(85);
  std::vector<Point> clients, facilities;
  for (int i = 0; i < 100; ++i) {
    clients.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 10; ++i) {
    facilities.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const auto l1_circles = BuildNnCircles(clients, facilities, Metric::kL1);
  SizeInfluence measure;
  DistinctSetSink via_l1;
  RunCrestL1(l1_circles, measure, &via_l1);
  DistinctSetSink via_rotation;
  RunCrest(RotateCirclesToLInf(l1_circles), measure, &via_rotation);
  EXPECT_EQ(via_l1.sets(), via_rotation.sets());
}

}  // namespace
}  // namespace rnnhm
