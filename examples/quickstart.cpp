// Quickstart: build an RNN heat map for a handful of clients and
// facilities, print every influential region, and write a PPM image.
//
//   $ ./examples/quickstart
//
// Walks the whole public API surface: NN-circle computation, the CREST
// sweep, an influence measure, post-processing, rasterization, and the
// serving API v2 (registered circle-set handles + the batched engine).
#include <cstdio>

#include "core/crest.h"
#include "data/generators.h"
#include "heatmap/ascii.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "nn/nn_circle_builder.h"
#include "query/heatmap_engine.h"

using namespace rnnhm;

int main() {
  // 1. A toy city: 40 clients, 5 facilities, uniformly scattered.
  Rng rng(2016);
  const Rect domain{{0, 0}, {1, 1}};
  const std::vector<Point> clients = GenerateUniform(40, domain, rng);
  const std::vector<Point> facilities = GenerateUniform(5, domain, rng);

  // 2. NN-circles: for each client, the circle reaching its nearest
  //    facility (L1 metric, as a courier would drive).
  const std::vector<NnCircle> circles =
      BuildNnCircles(clients, facilities, Metric::kL1);

  // 3. Sweep: label every region of the arrangement with its influence
  //    (here simply the size of the RNN set).
  SizeInfluence measure;
  RegionQuerySink regions;
  const CrestStats stats = RunCrestL1(circles, measure, &regions);
  std::printf("swept %zu NN-circles, %zu events, %zu region labelings\n",
              stats.num_circles, stats.num_events, stats.num_labelings);

  // 4. Post-processing: the five most influential regions.
  std::printf("\ntop-5 regions by influence:\n");
  for (const InfluentialRegion& r : regions.TopK(5)) {
    std::printf("  influence %.0f, RNN set {", r.influence);
    for (size_t i = 0; i < r.rnn.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", r.rnn[i]);
    }
    std::printf("}\n");
  }

  // 5. A heat-map image of the whole space (plus a terminal preview).
  const HeatmapGrid grid =
      BuildHeatmapL1(clients, facilities, measure, domain, 512, 512);
  std::printf("\n%s", RenderAscii(grid, 64, 20).c_str());
  if (WritePpm(grid, "quickstart_heatmap.ppm")) {
    std::printf("\nwrote quickstart_heatmap.ppm (max influence %.0f)\n",
                grid.MaxValue());
  }

  // 6. Serving at scale (API v2): HeatmapEngine batches independent
  //    requests across a worker pool. Each what-if circle set is
  //    registered once in the engine's CircleSetRegistry; the requests
  //    carry only a handle (id + content hash), so nothing is copied per
  //    submit and the result cache keys off the handle directly. Output
  //    is bit-identical to running each sweep sequentially.
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.cache_bytes = 8 << 20;  // memoize repeated what-ifs
  HeatmapEngine engine(measure, engine_options);
  std::vector<HeatmapRequestV2> batch;
  for (size_t drop = 0; drop < 4; ++drop) {
    std::vector<Point> remaining;
    for (size_t f = 0; f < facilities.size(); ++f) {
      if (f != drop) remaining.push_back(facilities[f]);
    }
    const CircleSetHandle handle = engine.registry().Register(
        BuildNnCircles(clients, remaining, Metric::kLInf), Metric::kLInf);
    batch.push_back(HeatmapRequestV2{handle, domain, 128, 128});
  }
  const std::vector<HeatmapResponse> what_ifs = engine.RunBatch(batch);
  std::printf("\nwhat-if analysis (remove one facility, L-inf):\n");
  for (size_t drop = 0; drop < what_ifs.size(); ++drop) {
    std::printf("  without facility %zu: max influence %.0f\n", drop,
                what_ifs[drop].grid.MaxValue());
  }

  // 7. Re-running a what-if is free: the handle's content hash finds the
  //    memoized response, bit-identical to the sweep above.
  const HeatmapResponse again = engine.Execute(batch[0]);
  std::printf("re-running what-if 0: %s (max influence %.0f)\n",
              again.from_cache ? "served from cache" : "recomputed",
              again.grid.MaxValue());
  return 0;
}
