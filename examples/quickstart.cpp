// Quickstart: build an RNN heat map for a handful of clients and
// facilities, print every influential region, and write a PPM image.
//
//   $ ./examples/quickstart
//
// Walks the whole public API surface in ~60 lines: NN-circle computation,
// the CREST sweep, an influence measure, post-processing, rasterization.
#include <cstdio>

#include "core/crest.h"
#include "data/generators.h"
#include "heatmap/ascii.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "nn/nn_circle_builder.h"

using namespace rnnhm;

int main() {
  // 1. A toy city: 40 clients, 5 facilities, uniformly scattered.
  Rng rng(2016);
  const Rect domain{{0, 0}, {1, 1}};
  const std::vector<Point> clients = GenerateUniform(40, domain, rng);
  const std::vector<Point> facilities = GenerateUniform(5, domain, rng);

  // 2. NN-circles: for each client, the circle reaching its nearest
  //    facility (L1 metric, as a courier would drive).
  const std::vector<NnCircle> circles =
      BuildNnCircles(clients, facilities, Metric::kL1);

  // 3. Sweep: label every region of the arrangement with its influence
  //    (here simply the size of the RNN set).
  SizeInfluence measure;
  RegionQuerySink regions;
  const CrestStats stats = RunCrestL1(circles, measure, &regions);
  std::printf("swept %zu NN-circles, %zu events, %zu region labelings\n",
              stats.num_circles, stats.num_events, stats.num_labelings);

  // 4. Post-processing: the five most influential regions.
  std::printf("\ntop-5 regions by influence:\n");
  for (const InfluentialRegion& r : regions.TopK(5)) {
    std::printf("  influence %.0f, RNN set {", r.influence);
    for (size_t i = 0; i < r.rnn.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", r.rnn[i]);
    }
    std::printf("}\n");
  }

  // 5. A heat-map image of the whole space (plus a terminal preview).
  const HeatmapGrid grid =
      BuildHeatmapL1(clients, facilities, measure, domain, 512, 512);
  std::printf("\n%s", RenderAscii(grid, 64, 20).c_str());
  if (WritePpm(grid, "quickstart_heatmap.ppm")) {
    std::printf("\nwrote quickstart_heatmap.ppm (max influence %.0f)\n",
                grid.MaxValue());
  }
  return 0;
}
