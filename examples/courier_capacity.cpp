// The courier scenario of the Introduction: choosing self-pickup service
// point locations under capacity constraints.
//
// Existing service points have limited storage; the influence of a new
// location p is the total number of served clients across all facilities
// after p opens: sum over f of min{c(f), |R(f)|} (the measure of [22]).
//
//   $ ./examples/courier_capacity
#include <cstdio>

#include "common/rng.h"
#include "core/crest.h"
#include "data/dataset.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "index/kdtree.h"
#include "nn/nn_circle_builder.h"

using namespace rnnhm;

int main() {
  // City data: potential clients and existing service points.
  const Dataset city = MakeDataset(DatasetKind::kNyc, 2016, 20000);
  const Workload w = SampleWorkload(city, 3000, 120, 7);
  std::printf("%zu clients, %zu existing service points\n",
              w.clients.size(), w.facilities.size());

  // Capacity-constrained influence: client -> current NN assignment plus
  // per-facility storage capacities.
  KdTree ftree(w.facilities);
  std::vector<int32_t> client_nn;
  client_nn.reserve(w.clients.size());
  for (const Point& c : w.clients) {
    client_nn.push_back(ftree.Nearest(c, Metric::kL1).index);
  }
  Rng rng(99);
  std::vector<int32_t> capacities;
  for (size_t f = 0; f < w.facilities.size(); ++f) {
    capacities.push_back(10 + static_cast<int32_t>(rng.NextBounded(30)));
  }
  const int32_t new_point_capacity = 40;
  CapacityInfluence measure(client_nn, capacities, new_point_capacity);
  std::printf("served clients today (no new point): %.0f\n",
              measure.Evaluate({}));

  // Sweep and query the most valuable regions for the new service point.
  const auto circles = BuildNnCircles(w.clients, w.facilities, Metric::kL1);
  RegionQuerySink regions;
  const CrestStats stats = RunCrestL1(circles, measure, &regions);
  std::printf("%zu regions labeled across %zu events\n",
              stats.num_labelings, stats.num_events);

  std::printf("\ntop-5 locations by total served clients after opening:\n");
  for (const auto& r : regions.TopK(5)) {
    // Witness rectangles are in the rotated sweep frame; report the
    // original-frame location.
    const Point rotated_center = r.representative.Center();
    const Point site = RotateFromLInf(rotated_center);
    std::printf("  (%.4f, %.4f): serves %.0f clients (steals %zu)\n",
                site.x, site.y, r.influence, r.rnn.size());
  }

  // Threshold query: all regions improving on the status quo by >= 30.
  const double today = measure.Evaluate({});
  const auto good = regions.AboveThreshold(today + 30);
  std::printf("\n%zu candidate regions add at least 30 served clients\n",
              good.size());

  // Render the capacity heat map.
  const Rect domain = BoundingBox(city.points, 0.01);
  const HeatmapGrid grid =
      BuildHeatmapL1(w.clients, w.facilities, measure, domain, 512, 512);
  WritePpm(grid, "courier_heatmap.ppm");
  std::printf("wrote courier_heatmap.ppm\n");
  return 0;
}
