// Influence exploration over a whole city (the Fig. 1 / Fig. 15 workflow):
// build the full heat map, then interactively narrow down: threshold
// filter, top-k, and a zoom into the hottest district.
//
//   $ ./examples/city_explorer [clients] [facilities]
#include <cstdio>
#include <cstdlib>

#include "core/crest.h"
#include "data/dataset.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "nn/nn_circle_builder.h"

using namespace rnnhm;

int main(int argc, char** argv) {
  const size_t num_clients = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 20000;
  const size_t num_facilities =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6000;

  // The paper's showcase sampling: 20,000 clients, 6,000 facilities.
  const Dataset city = MakeDataset(DatasetKind::kNyc, 1, 0);
  std::printf("%s: %zu points (%s)\n", city.name.c_str(),
              city.points.size(), city.description.c_str());
  const Workload w = SampleWorkload(city, num_clients, num_facilities, 1);

  SizeInfluence measure;
  const auto circles = BuildNnCircles(w.clients, w.facilities, Metric::kL1);
  RegionQuerySink regions;
  MaxInfluenceSink max_sink;
  TeeSink tee({&regions, &max_sink});
  const CrestStats stats = RunCrestL1(circles, measure, &tee);
  std::printf("swept %zu circles, %zu labelings, %zu distinct RNN sets\n",
              stats.num_circles, stats.num_labelings,
              regions.NumDistinctSets());
  std::printf("max influence anywhere: %.0f clients\n",
              max_sink.max_influence());

  // Interactive-style narrowing.
  const auto top = regions.TopK(10);
  std::printf("\ntop-10 influence values:");
  for (const auto& r : top) std::printf(" %.0f", r.influence);
  std::printf("\n");
  const double tau = max_sink.max_influence() * 0.8;
  std::printf("regions above 80%% of max (%.0f): %zu\n", tau,
              regions.AboveThreshold(tau).size());

  // Full-city heat map + zoom into the hottest region's neighborhood.
  const Rect domain = BoundingBox(city.points, 0.005);
  const HeatmapGrid overview =
      BuildHeatmapL1(w.clients, w.facilities, measure, domain, 640, 640);
  WritePpm(overview, "city_overview.ppm");
  if (!top.empty()) {
    const Point hot = RotateFromLInf(top[0].representative.Center());
    const double zoom = (domain.hi.x - domain.lo.x) * 0.06;
    const Rect window{{hot.x - zoom, hot.y - zoom},
                      {hot.x + zoom, hot.y + zoom}};
    const HeatmapGrid detail =
        BuildHeatmapL1(w.clients, w.facilities, measure, window, 512, 512);
    WritePpm(detail, "city_zoom.ppm");
    std::printf("\nwrote city_overview.ppm and city_zoom.ppm (zoom at "
                "%.4f, %.4f)\n", hot.x, hot.y);
  }
  return 0;
}
