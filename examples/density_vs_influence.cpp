// Reproduces the Fig. 2 observation: the most influential regions are NOT
// where client density peaks, because existing facilities compete.
//
// A dense client cluster sits in the upper-left corner but is saturated
// with facilities; sparser mid-town clients are underserved, so the most
// influential locations appear there.
//
//   $ ./examples/density_vs_influence
#include <algorithm>
#include <cstdio>

#include "core/crest_l2.h"
#include "data/generators.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "nn/nn_circle_builder.h"

using namespace rnnhm;

int main() {
  Rng rng(7);
  const Rect domain{{0, 0}, {1, 1}};

  // Dense upper-left cluster (60% of clients) + mid-town spread.
  std::vector<Point> clients;
  for (int i = 0; i < 600; ++i) {
    clients.push_back({0.15 + rng.NextGaussian() * 0.05,
                       0.85 + rng.NextGaussian() * 0.05});
  }
  for (int i = 0; i < 400; ++i) {
    clients.push_back({0.55 + rng.NextGaussian() * 0.12,
                       0.45 + rng.NextGaussian() * 0.12});
  }
  // Facilities crowd the dense corner; mid-town has only a few.
  std::vector<Point> facilities;
  for (int i = 0; i < 30; ++i) {
    facilities.push_back({0.15 + rng.NextGaussian() * 0.06,
                          0.85 + rng.NextGaussian() * 0.06});
  }
  for (int i = 0; i < 3; ++i) {
    facilities.push_back({0.55 + rng.NextGaussian() * 0.15,
                          0.45 + rng.NextGaussian() * 0.15});
  }

  // L2 sweep over disk NN-circles, exactly as a planner would measure reach.
  SizeInfluence measure;
  const auto circles = BuildNnCircles(clients, facilities, Metric::kL2);
  RegionQuerySink regions;
  RunCrestL2(circles, measure, &regions);

  const auto top = regions.TopK(4);
  std::printf("top-4 influential regions (size of RNN set):\n");
  int in_midtown = 0;
  for (const auto& r : top) {
    const Point c = r.representative.Center();
    const bool midtown = c.x > 0.35 && c.x < 0.8 && c.y > 0.2 && c.y < 0.7;
    in_midtown += midtown;
    std::printf("  influence %.0f at (%.2f, %.2f) -> %s\n", r.influence, c.x,
                c.y, midtown ? "mid-town" : "dense corner");
  }
  std::printf("\n%d of 4 top regions are in sparser mid-town, despite the "
              "corner holding 60%% of clients\n", in_midtown);

  // Render density vs influence side by side.
  HeatmapGrid density(256, 256, domain, 0.0);
  for (const Point& p : clients) {
    const int i = std::clamp(static_cast<int>(p.x * 256), 0, 255);
    const int j = std::clamp(static_cast<int>(p.y * 256), 0, 255);
    density.At(i, j) += 1.0;
  }
  WritePpm(density, "fig2_density.ppm");
  const HeatmapGrid influence = BuildHeatmapBruteForce(
      circles, Metric::kL2, measure, domain, 256, 256);
  WritePpm(influence, "fig2_influence.ppm");
  std::printf("wrote fig2_density.ppm and fig2_influence.ppm\n");
  return 0;
}
