// The taxi-sharing scenario of Fig. 3: why superimposition fails.
//
// Clients are app users waiting for taxis, facilities are taxis. Drivers
// profit from picking up *connected* passengers (close destinations), so
// the influence of a location is the number of destination edges inside its
// RNN set — a measure superimposition cannot express.
//
//   $ ./examples/taxi_sharing
#include <cstdio>

#include "core/crest.h"
#include "data/generators.h"
#include "heatmap/heatmap.h"
#include "heatmap/image.h"
#include "heatmap/influence.h"
#include "heatmap/postprocess.h"
#include "heatmap/superimposition.h"
#include "nn/nn_circle_builder.h"

using namespace rnnhm;

int main() {
  Rng rng(42);
  const Rect domain{{0, 0}, {1, 1}};
  // 60 waiting passengers, 8 taxis.
  const std::vector<Point> passengers = GenerateUniform(60, domain, rng);
  const std::vector<Point> taxis = GenerateUniform(8, domain, rng);

  // Destination graph: passengers whose destinations are within 1 km.
  // Synthesize destinations and connect close pairs.
  std::vector<Point> destinations = GenerateUniform(60, domain, rng);
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < 60; ++i) {
    for (int32_t j = i + 1; j < 60; ++j) {
      if (DistanceL2(destinations[i], destinations[j]) < 0.15) {
        edges.push_back({i, j});
      }
    }
  }
  std::printf("%zu destination edges among 60 passengers\n", edges.size());

  const auto circles = BuildNnCircles(passengers, taxis, Metric::kL1);
  ConnectivityInfluence connected(60, edges);

  // True heat map under the connectivity measure.
  RegionQuerySink regions;
  RunCrestL1(circles, connected, &regions);
  const auto top = regions.TopK(3);
  std::printf("\nbest pick-up regions (connected-passenger count):\n");
  for (const auto& r : top) {
    std::printf("  %.0f connected pairs among %zu passengers\n", r.influence,
                r.rnn.size());
  }

  // The superimposition ranks by circle depth instead — compare the
  // passenger count of its densest cell with the true best.
  const HeatmapGrid overlay =
      BuildSuperimposition(circles, Metric::kL1, domain, 256, 256);
  SizeInfluence size_measure;
  RegionQuerySink by_size;
  RunCrestL1(circles, size_measure, &by_size);
  const auto densest = by_size.TopK(1);
  std::printf(
      "\nsuperimposition's darkest region holds %zu passengers "
      "(overlay max depth %.0f)\n",
      densest.empty() ? 0 : densest[0].rnn.size(), overlay.MaxValue());
  if (!top.empty() && !densest.empty()) {
    const double true_heat_of_densest = connected.Evaluate(densest[0].rnn);
    std::printf(
        "connectivity heat of that region: %.0f vs optimum %.0f -> "
        "superimposition %s\n",
        true_heat_of_densest, top[0].influence,
        true_heat_of_densest < top[0].influence ? "picks a worse region"
                                                : "got lucky this time");
  }

  // Render both maps for visual comparison.
  const HeatmapGrid heat = BuildHeatmapL1(passengers, taxis, connected,
                                          domain, 512, 512);
  WritePpm(heat, "taxi_heatmap.ppm");
  WritePpm(overlay, "taxi_superimposition.ppm");
  std::printf("\nwrote taxi_heatmap.ppm and taxi_superimposition.ppm\n");
  return 0;
}
