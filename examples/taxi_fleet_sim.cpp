// Dynamic fleet simulation (the taxi-sharing motivation of Section I):
// passengers request rides, move, and get picked up; the dispatcher keeps
// an up-to-date influence heat map and repositions idle taxis toward the
// most influential regions each tick.
//
//   $ ./examples/taxi_fleet_sim [ticks]
//
// Demonstrates the incremental HeatmapSession API: per-tick costs are one
// k-d tree query per moved client plus one CREST sweep — fast enough for
// real-time recomputation, which is exactly why sweep efficiency matters.
// The archived per-tick snapshots use the serving API v2: each tick's
// circle set registers into the engine's CircleSetRegistry and the replay
// submits lightweight handles instead of copying circle vectors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/generators.h"
#include "heatmap/influence.h"
#include "heatmap/topk_stream.h"
#include "nn/nn_circle_builder.h"
#include "query/heatmap_engine.h"
#include "query/heatmap_session.h"

using namespace rnnhm;

int main(int argc, char** argv) {
  const int ticks = argc > 1 ? std::atoi(argv[1]) : 20;
  Rng rng(77);
  const Rect city{{0, 0}, {1, 1}};

  // 400 waiting passengers, 40 taxis.
  std::vector<Point> passengers = GenerateUniform(400, city, rng);
  const std::vector<Point> taxis = GenerateUniform(40, city, rng);
  HeatmapSession session(passengers, taxis, Metric::kL1);
  SizeInfluence measure;

  double total_sweep_ms = 0.0;
  // The session sweeps L1 in the rotated frame; archived rasters cover the
  // rotated city's bounding box.
  Rect rot_city = EmptyRect();
  for (const Point& corner :
       {city.lo, Point{city.hi.x, city.lo.y}, Point{city.lo.x, city.hi.y},
        city.hi}) {
    const Point r = RotateToLInf(corner);
    rot_city = rot_city.Union(Rect{r, r});
  }
  // The dispatcher's archive engine: per-tick circle sets register here
  // (stored once each, content-addressed) and render in one batch below.
  SizeInfluence archive_measure;
  HeatmapEngineOptions engine_options;
  engine_options.num_threads = 4;
  HeatmapEngine engine(archive_measure, engine_options);
  std::vector<HeatmapRequestV2> archive;  // handles, not circle copies
  for (int tick = 0; tick < ticks; ++tick) {
    // Passengers drift (walking to better corners); a few new requests.
    for (int m = 0; m < 40; ++m) {
      const int32_t id =
          static_cast<int32_t>(rng.NextBounded(session.num_clients()));
      const Point old = session.clients()[id];
      session.MoveClient(
          id, {std::clamp(old.x + rng.NextGaussian() * 0.01, 0.0, 1.0),
               std::clamp(old.y + rng.NextGaussian() * 0.01, 0.0, 1.0)});
    }
    for (int a = 0; a < 5; ++a) {
      session.AddClient({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }

    // Rebuild the heat map and fetch the best staging region.
    Stopwatch sw;
    TopKStreamSink top(3);
    session.Rebuild(measure, &top);
    const double ms = sw.ElapsedMs();
    total_sweep_ms += ms;
    const auto best = top.Result();
    if (!best.empty()) {
      const Point hot = RotateFromLInf(best[0].representative.Center());
      std::printf(
          "tick %2d: %zu waiting, best staging spot (%.3f, %.3f) would win "
          "%.0f passengers  [sweep %.1f ms]\n",
          tick, session.num_clients(), hot.x, hot.y, best[0].influence, ms);
      // Dispatch: a taxi "arrives" there — the fleet adapts.
      session.AddFacility(hot);
    }

    // Snapshot this tick for the batched replay: the rotated circles
    // register once; the archive keeps only the handle.
    const CircleSetHandle snapshot = engine.registry().Register(
        RotateCirclesToLInf(session.circles()), Metric::kLInf);
    archive.push_back(HeatmapRequestV2{snapshot, rot_city, 96, 96});
  }
  std::printf("\naverage sweep time per tick: %.1f ms (%zu clients, %zu "
              "taxis at the end)\n",
              total_sweep_ms / ticks, session.num_clients(),
              session.num_facilities());

  // Replay: render every tick's heat map in one batched engine run — the
  // "dashboard" view a dispatcher would archive. Requests are independent,
  // so the pool parallelizes across ticks.
  Stopwatch sw;
  const std::vector<HeatmapResponse> frames = engine.RunBatch(archive);
  double peak = 0.0;
  int peak_tick = 0;
  for (size_t t = 0; t < frames.size(); ++t) {
    if (frames[t].grid.MaxValue() > peak) {
      peak = frames[t].grid.MaxValue();
      peak_tick = static_cast<int>(t);
    }
  }
  std::printf("rendered %zu archived tick heat maps in %.1f ms with %d "
              "workers; hottest tick %d (influence %.0f)\n",
              frames.size(), sw.ElapsedMs(), engine.num_threads(),
              peak_tick, peak);
  return 0;
}
